package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"calibsched/internal/server"
	"calibsched/internal/store"
	"calibsched/internal/trace"
)

// TestAggregateHistogramUnionBuckets is the regression for the merge of
// histograms whose bucket sets disagree across nodes. Summing per exact
// `le` string produced a non-monotone histogram whenever one node had a
// bound the other lacked; the merge must instead evaluate each node's
// cumulative curve over the union of bounds. The second node's first
// bucket also carries an OpenMetrics exemplar, which the parser must
// strip rather than mistake for the sample value.
func TestAggregateHistogramUnionBuckets(t *testing.T) {
	a := newAggregator()
	a.ingest("n1", strings.Join([]string{
		"# TYPE step_latency histogram",
		`step_latency_bucket{le="0.1"} 5`,
		`step_latency_bucket{le="+Inf"} 10`,
		"step_latency_sum 1.5",
		"step_latency_count 10",
	}, "\n"))
	a.ingest("n2", strings.Join([]string{
		"# TYPE step_latency histogram",
		`step_latency_bucket{le="0.05"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.003`,
		`step_latency_bucket{le="0.1"} 4`,
		`step_latency_bucket{le="0.5"} 6`,
		`step_latency_bucket{le="+Inf"} 7`,
		"step_latency_sum 0.9",
		"step_latency_count 7",
	}, "\n"))
	var buf bytes.Buffer
	a.render(&buf)

	want := map[string]float64{
		// n1's curve evaluated below its first bound is 0; above 0.1 it
		// holds at 5 until +Inf.
		"0.05": 2,  // 0 + 2
		"0.1":  9,  // 5 + 4
		"0.5":  11, // 5 + 6
		"+Inf": 17, // 10 + 7
	}
	got := map[string]float64{}
	var les []string
	var prev float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "step_latency_bucket{") {
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok || name != "step_latency_bucket" {
			t.Fatalf("unparseable rendered bucket line %q", line)
		}
		le := labelValue(labels, "le")
		got[le] = value
		les = append(les, le)
		if value < prev {
			t.Fatalf("merged histogram is non-monotone: le=%s dropped to %v (line %q)", le, value, line)
		}
		prev = value
	}
	if len(got) != len(want) {
		t.Fatalf("merged bounds %v, want the union %v", les, want)
	}
	for le, v := range want {
		if got[le] != v {
			t.Errorf("bucket le=%s = %v, want %v", le, got[le], v)
		}
	}
	if !strings.Contains(buf.String(), "step_latency_count 17") {
		t.Errorf("merged count missing or wrong:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "step_latency_sum 2.4") {
		t.Errorf("merged sum missing or wrong:\n%s", buf.String())
	}
}

// bootDurableBackend starts a calibserved serving layer over a WAL store
// with per-append fsync, so traced requests exercise the wal-append and
// fsync-wait phases.
func bootDurableBackend(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	srv, err := server.New(server.Config{Store: st})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("backend shutdown: %v", err)
		}
	})
	return ts
}

// callTraced issues a JSON request carrying traceparent and returns the
// status plus the response's traceparent header.
func callTraced(t *testing.T, method, url, traceparent string, body, out any) (int, string) {
	t.Helper()
	var b []byte
	if body != nil {
		var err error
		if b, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("traceparent")
}

// fetchStitched polls the gateway's stitched trace until it contains
// every wanted phase (span landing is asynchronous with the response by
// one goroutine hop) or the deadline passes.
func fetchStitched(t *testing.T, gw, traceID string, wantPhases []string) server.TraceGetResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var got server.TraceGetResponse
	for {
		status, raw := callRaw(t, "GET", gw+"/v1/traces/"+traceID, nil)
		if status == http.StatusOK {
			got = server.TraceGetResponse{}
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatalf("decoding stitched trace: %v", err)
			}
			have := map[string]bool{}
			for _, sp := range got.Spans {
				have[sp.Phase] = true
			}
			missing := false
			for _, p := range wantPhases {
				if !have[p] {
					missing = true
				}
			}
			if !missing {
				return got
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched trace %s never reached phases %v; last status %d, spans %+v",
				traceID, wantPhases, status, got.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStitchedTraceAcceptance is the tentpole's end-to-end claim: one
// client-traced arrival-and-step through the gateway yields a single
// stitched trace covering proxy → http → queue-wait → engine-step →
// wal-append → fsync-wait, with every child's duration bounded by its
// parent's and the proxy roots bounded by the client-observed latency.
func TestStitchedTraceAcceptance(t *testing.T) {
	b1, b2 := bootDurableBackend(t), bootDurableBackend(t)
	_, gw := bootGateway(t, b1.URL, b2.URL)

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	parent := "00-" + traceID + "-00f067aa0ba902b7-01"

	var info server.SessionInfo
	status, respTP := callTraced(t, "POST", gw.URL+"/v1/sessions", parent,
		server.CreateSessionRequest{T: 8, G: 16, Alg: "alg2"}, &info)
	if status != 201 {
		t.Fatalf("create: status %d", status)
	}
	if sc, ok := trace.ParseTraceparent(respTP); !ok || sc.TraceID != traceID {
		t.Fatalf("gateway response traceparent %q does not continue trace %s", respTP, traceID)
	}
	var ar server.ArrivalsResponse
	if status, _ = callTraced(t, "POST", gw.URL+"/v1/sessions/"+info.ID+"/arrivals", parent,
		server.ArrivalsRequest{Jobs: []server.JobSpec{{Release: 0, Weight: 3}}}, &ar); status != 200 {
		t.Fatalf("arrivals: status %d", status)
	}
	stepStart := time.Now()
	var sr server.StepResponse
	if status, _ = callTraced(t, "POST", gw.URL+"/v1/sessions/"+info.ID+"/step", parent,
		server.StepRequest{Steps: 4}, &sr); status != 200 {
		t.Fatalf("step: status %d", status)
	}
	clientLatency := time.Since(stepStart)

	wantPhases := []string{
		trace.PhaseProxy, trace.PhaseHTTP, trace.PhaseQueueWait,
		trace.PhaseEngineStep, trace.PhaseWALAppend, trace.PhaseFsyncWait,
	}
	got := fetchStitched(t, gw.URL, traceID, wantPhases)
	if got.TraceID != traceID {
		t.Fatalf("stitched trace ID %q, want %q", got.TraceID, traceID)
	}

	byID := map[string]trace.Span{}
	childSums := map[string]time.Duration{}
	for _, sp := range got.Spans {
		if sp.TraceID != traceID {
			t.Fatalf("span %+v carries trace %q, want %q", sp, sp.TraceID, traceID)
		}
		if sp.Node == "" {
			t.Fatalf("stitched span %+v has no node", sp)
		}
		byID[sp.SpanID] = sp
		if sp.Parent != "" {
			childSums[sp.Parent] += time.Duration(sp.Duration)
		}
	}
	for _, sp := range got.Spans {
		switch sp.Phase {
		case trace.PhaseProxy:
			if sp.Node != "gateway" {
				t.Errorf("proxy span recorded on %q, want gateway", sp.Node)
			}
			if d := time.Duration(sp.Duration); d > clientLatency+time.Second {
				t.Errorf("proxy span duration %v exceeds client latency %v", d, clientLatency)
			}
		case trace.PhaseHTTP:
			if sp.Node != b1.URL && sp.Node != b2.URL {
				t.Errorf("http span recorded on %q, want a backend URL", sp.Node)
			}
			// The backend's http span must nest under a gateway proxy span
			// (the traceparent forwarded by the proxy is its parent).
			parentSpan, ok := byID[sp.Parent]
			if !ok || parentSpan.Phase != trace.PhaseProxy {
				t.Errorf("http span parent %q is not a stitched proxy span", sp.Parent)
			} else if time.Duration(sp.Duration) > time.Duration(parentSpan.Duration) {
				t.Errorf("http span %v is longer than its enclosing proxy span %v",
					time.Duration(sp.Duration), time.Duration(parentSpan.Duration))
			}
		}
		// Worker phases sum to at most their root (they partition disjoint
		// stretches of it).
		if sum, root := childSums[sp.SpanID], time.Duration(sp.Duration); sum > root {
			t.Errorf("children of %s span %s sum to %v > the span's own %v", sp.Phase, sp.SpanID, sum, root)
		}
	}

	// The gateway's merged index must describe the trace by its outermost
	// (proxy) root.
	var list server.TraceListResponse
	if status := call(t, "GET", gw.URL+"/v1/traces", nil, &list); status != 200 {
		t.Fatalf("stitched list: status %d", status)
	}
	var found bool
	for _, sum := range list.Traces {
		if sum.TraceID == traceID {
			found = true
			if sum.RootPhase != trace.PhaseProxy {
				t.Errorf("merged summary root phase %q, want proxy", sum.RootPhase)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s missing from merged list %+v", traceID, list.Traces)
	}
}

// TestTraceAcrossMigration pins the propagation contract through a live
// migration: a request arriving after the session moved — with no client
// traceparent at all — still produces one stitched trace, rooted in the
// gateway's minted proxy span, whose backend spans were recorded on the
// *target* node.
func TestTraceAcrossMigration(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	_, gw := bootGateway(t, b1.URL, b2.URL)

	var info server.SessionInfo
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 8, G: 2, Alg: "alg2"}, &info); status != 201 {
		t.Fatalf("create: status %d", status)
	}
	feed(t, gw.URL, info.ID, 0)

	var m MigrateResponse
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: info.ID}, &m); status != 200 {
		t.Fatalf("migrate: status %d", status)
	}

	// Post-migration arrival, untraced by the client: the gateway mints
	// the trace and tells us its ID in the response header.
	var ar server.ArrivalsResponse
	status, respTP := callTraced(t, "POST", gw.URL+"/v1/sessions/"+info.ID+"/arrivals", "",
		server.ArrivalsRequest{Jobs: []server.JobSpec{{Release: 10, Weight: 2}}}, &ar)
	if status != 200 || ar.Accepted != 1 {
		t.Fatalf("post-migration arrivals: status %d resp %+v", status, ar)
	}
	sc, ok := trace.ParseTraceparent(respTP)
	if !ok {
		t.Fatalf("gateway answered no traceparent for the minted trace (header %q)", respTP)
	}

	got := fetchStitched(t, gw.URL, sc.TraceID,
		[]string{trace.PhaseProxy, trace.PhaseHTTP, trace.PhaseQueueWait})
	for _, sp := range got.Spans {
		switch sp.Phase {
		case trace.PhaseProxy:
			if sp.Node != "gateway" {
				t.Errorf("proxy span on %q, want gateway", sp.Node)
			}
			if sp.Attrs["node"] != m.To {
				t.Errorf("proxy span routed to %q, want the migration target %s", sp.Attrs["node"], m.To)
			}
		default:
			if sp.Node != m.To {
				t.Errorf("%s span recorded on %q, want the migration target %s", sp.Phase, sp.Node, m.To)
			}
			if sp.Node == m.From {
				t.Errorf("%s span recorded on the migration source %s", sp.Phase, m.From)
			}
		}
	}
}

// TestGatewayTraceRecordingDisabled checks the pass-through contract: a
// gateway with recording off still forwards the client's traceparent so
// the backend fragment exists, and its trace endpoints still answer by
// fanning out to the fleet.
func TestGatewayTraceRecordingDisabled(t *testing.T) {
	b := bootBackend(t)
	g, err := NewGateway(Options{Backends: []string{b.URL}, VNodes: 16, SpanStoreSize: -1})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	gw := httptest.NewServer(g)
	t.Cleanup(func() {
		gw.Close()
		g.Close()
	})

	const traceID = "af7651916cd43dd8448eb211c80319c7"
	parent := "00-" + traceID + "-b7ad6b7169203331-01"
	var info server.SessionInfo
	status, respTP := callTraced(t, "POST", gw.URL+"/v1/sessions", parent,
		server.CreateSessionRequest{T: 8, G: 2, Alg: "alg2"}, &info)
	if status != 201 {
		t.Fatalf("create: status %d", status)
	}
	// No proxy span here — the header comes back from the backend relay,
	// continuing the client's trace.
	if sc, ok := trace.ParseTraceparent(respTP); ok && sc.TraceID != traceID {
		t.Fatalf("relayed traceparent %q does not continue trace %s", respTP, traceID)
	}
	if status, _ := callTraced(t, "POST", gw.URL+"/v1/sessions/"+info.ID+"/step", parent,
		server.StepRequest{Steps: 2}, nil); status != 200 {
		t.Fatalf("step: status %d", status)
	}
	got := fetchStitched(t, gw.URL, traceID, []string{trace.PhaseHTTP, trace.PhaseQueueWait})
	for _, sp := range got.Spans {
		if sp.Phase == trace.PhaseProxy {
			t.Fatalf("disabled gateway recorded a proxy span: %+v", sp)
		}
		if sp.Node != b.URL {
			t.Errorf("span %+v not attributed to the backend", sp)
		}
	}
}

// TestStitchedTraceUnknown404s checks the stitched lookup's miss path.
func TestStitchedTraceUnknown404s(t *testing.T) {
	b := bootBackend(t)
	_, gw := bootGateway(t, b.URL)
	status, raw := callRaw(t, "GET", gw.URL+"/v1/traces/"+strings.Repeat("f", 32), nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown stitched trace: status %d body %s, want 404", status, raw)
	}
}

// TestAggregatedMetricsBuildInfo checks that one gateway scrape carries
// both build-info families: the backend's, re-labeled per node, and the
// gateway's own.
func TestAggregatedMetricsBuildInfo(t *testing.T) {
	b := bootBackend(t)
	_, gw := bootGateway(t, b.URL)
	status, raw := callRaw(t, "GET", gw.URL+"/metrics", nil)
	if status != 200 {
		t.Fatalf("metrics: status %d", status)
	}
	text := string(raw)
	if !strings.Contains(text, "calibgate_build_info{") {
		t.Errorf("scrape missing calibgate_build_info:\n%s", clipMetrics(text))
	}
	if !strings.Contains(text, "calibserved_build_info{") {
		t.Errorf("scrape missing re-labeled calibserved_build_info:\n%s", clipMetrics(text))
	}
	if !strings.Contains(text, fmt.Sprintf("node=%s", strconv.Quote(b.URL))) {
		t.Errorf("backend gauge lines missing node label:\n%s", clipMetrics(text))
	}
}

func clipMetrics(text string) string {
	if len(text) > 2000 {
		return text[:2000] + "\n..."
	}
	return text
}
