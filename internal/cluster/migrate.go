package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Live session handoff and ring rebalance. The protocol is
// export → import → purge (DESIGN.md §13 has the state machine and
// failure matrix): the source drains the session's worker and hands
// back snapshot + WAL tail, the target replays it through the crash
// recovery path, and only after the import has durably succeeded does
// the gateway purge the settled source copy. Every step is crash-safe:
// until the purge, the source directory is a safety net that resurrects
// the session at the source's next boot.
//
// Admin operations (migrate/join/leave) serialize on a channel
// semaphore; a second admin request answers 409 immediately instead of
// queueing behind a multi-session rebalance.

// gwError is a gateway-originated error with an HTTP status.
type gwError struct {
	status int
	msg    string
}

func (e *gwError) Error() string { return e.msg }

// MigrateRequest is the POST /v1/cluster/migrate body. Target is
// optional: empty picks the first ready node other than the current
// owner.
type MigrateRequest struct {
	Session string `json:"session"`
	Target  string `json:"target,omitempty"`
}

// MigrateResponse reports a completed handoff.
type MigrateResponse struct {
	Session string `json:"session"`
	From    string `json:"from"`
	To      string `json:"to"`
}

// JoinRequest is the POST /v1/cluster/join body.
type JoinRequest struct {
	Node string `json:"node"`
}

// LeaveRequest is the POST /v1/cluster/leave body. Force removes an
// unreachable node without draining it — its sessions are lost until
// the node returns.
type LeaveRequest struct {
	Node  string `json:"node"`
	Force bool   `json:"force,omitempty"`
}

// RebalanceResponse reports a join or leave: how many sessions the ring
// moved and which of those migrations failed (failed sessions keep
// serving from their old node via the override table).
type RebalanceResponse struct {
	Node    string   `json:"node"`
	Moved   int      `json:"moved"`
	Failed  []string `json:"failed,omitempty"`
	Members []string `json:"members"`
}

// acquireAdmin takes the admin semaphore without blocking.
func (g *Gateway) acquireAdmin() bool {
	select {
	case g.admin <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g *Gateway) releaseAdmin() { <-g.admin }

func (g *Gateway) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := decodeAdmin(w, r, &req); err != nil {
		return
	}
	if req.Session == "" {
		writeGatewayError(w, http.StatusBadRequest, "session is required")
		return
	}
	if !g.acquireAdmin() {
		writeRetryError(w, http.StatusConflict, "another cluster operation is in flight; retry")
		return
	}
	defer g.releaseAdmin()
	resp, err := g.migrate(req.Session, req.Target)
	if err != nil {
		writeAdminError(w, err)
		return
	}
	writeGatewayJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := decodeAdmin(w, r, &req); err != nil {
		return
	}
	if !g.acquireAdmin() {
		writeRetryError(w, http.StatusConflict, "another cluster operation is in flight; retry")
		return
	}
	defer g.releaseAdmin()
	resp, err := g.join(req.Node)
	if err != nil {
		writeAdminError(w, err)
		return
	}
	writeGatewayJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if err := decodeAdmin(w, r, &req); err != nil {
		return
	}
	if !g.acquireAdmin() {
		writeRetryError(w, http.StatusConflict, "another cluster operation is in flight; retry")
		return
	}
	defer g.releaseAdmin()
	resp, err := g.leave(req.Node, req.Force)
	if err != nil {
		writeAdminError(w, err)
		return
	}
	writeGatewayJSON(w, http.StatusOK, resp)
}

func decodeAdmin(w http.ResponseWriter, r *http.Request, dst any) error {
	body, err := readBody(w, r)
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return err
	}
	if err := json.Unmarshal(body, dst); err != nil {
		writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("malformed request body: %v", err))
		return err
	}
	return nil
}

func writeAdminError(w http.ResponseWriter, err error) {
	if ge, ok := err.(*gwError); ok {
		writeGatewayError(w, ge.status, ge.msg)
		return
	}
	writeGatewayError(w, http.StatusInternalServerError, err.Error())
}

// migrate moves one session. Caller holds the admin semaphore.
func (g *Gateway) migrate(id, target string) (MigrateResponse, error) {
	from, ok := g.route(id)
	if !ok {
		return MigrateResponse{}, &gwError{status: http.StatusServiceUnavailable, msg: "no backends in the ring"}
	}
	if target == "" {
		target, ok = g.readyNodeOtherThan(from)
		if !ok {
			return MigrateResponse{}, &gwError{status: http.StatusServiceUnavailable,
				msg: "no ready node other than the current owner to migrate to"}
		}
	} else {
		var err error
		if target, err = normalizeNode(target); err != nil {
			return MigrateResponse{}, &gwError{status: http.StatusBadRequest, msg: err.Error()}
		}
		if !g.ring.Has(target) {
			return MigrateResponse{}, &gwError{status: http.StatusBadRequest,
				msg: fmt.Sprintf("target %s is not a ring member; join it first", target)}
		}
	}
	if target == from {
		return MigrateResponse{Session: id, From: from, To: target}, nil
	}
	if err := g.handoff(id, from, target); err != nil {
		return MigrateResponse{}, err
	}
	g.log.Info("session migrated", "session", id, "from", from, "to", target)
	return MigrateResponse{Session: id, From: from, To: target}, nil
}

// handoff runs the export → import → purge protocol for one session and
// maintains the override table so routing tracks the session the moment
// it lands. Caller holds the admin semaphore.
func (g *Gateway) handoff(id, from, target string) error {
	if !g.health.Ready(target) {
		return &gwError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("target %s is not ready", target)}
	}
	// Export: the source drains the worker and hands back the session's
	// portable state. From this moment the session serves nowhere; a
	// request racing in observes a 404 until the import lands (clients
	// treat that as transient — see DESIGN.md §13's failure matrix).
	exp, err := g.send(http.MethodPost, from, "/v1/sessions/"+id+"/export", nil)
	if err != nil {
		g.metrics.migrationFailures.Add(1)
		return &gwError{status: http.StatusBadGateway,
			msg: fmt.Sprintf("exporting %s from %s: %v", id, from, err)}
	}
	if exp.status != http.StatusOK {
		g.metrics.migrationFailures.Add(1)
		return &gwError{status: exp.status,
			msg: fmt.Sprintf("exporting %s from %s: %s", id, from, strings.TrimSpace(string(exp.body)))}
	}

	imp, err := g.send(http.MethodPost, target, "/v1/sessions/import", exp.body)
	if err != nil || imp.status != http.StatusCreated {
		g.metrics.migrationFailures.Add(1)
		detail := ""
		if err != nil {
			detail = err.Error()
		} else {
			detail = fmt.Sprintf("status %d: %s", imp.status, strings.TrimSpace(string(imp.body)))
		}
		// Rollback: re-import the exported payload on the source, which
		// replaces its own settled directory with identical state. If even
		// that fails the session is out of serving but durable on the
		// source's disk; the source's next boot resurrects it.
		if rb, rbErr := g.send(http.MethodPost, from, "/v1/sessions/import", exp.body); rbErr != nil || rb.status != http.StatusCreated {
			g.log.Error("migration rollback failed; session will resurrect at source reboot",
				"session", id, "source", from, "err", rbErr)
			return &gwError{status: http.StatusBadGateway, msg: fmt.Sprintf(
				"importing %s on %s failed (%s) and rollback to %s failed too; session is offline until %s reboots",
				id, target, detail, from, from)}
		}
		return &gwError{status: http.StatusBadGateway,
			msg: fmt.Sprintf("importing %s on %s: %s (rolled back to %s)", id, target, detail, from)}
	}

	// The session now lives on target: pin routing there before anything
	// else, clearing the pin only when the ring already agrees.
	if ringOwner, ok := g.ring.Owner(id); ok && ringOwner == target {
		g.clearOverride(id)
	} else {
		g.setOverride(id, target)
	}
	g.metrics.migrations.Add(1)

	// Purge the settled source copy. Best-effort: a failure leaves an
	// orphaned directory that resurrects at the source's next boot, at
	// which point it answers alongside the live copy — which is why the
	// purge is retried by DELETE and logged loudly here.
	if res, err := g.send(http.MethodDelete, from, "/v1/sessions/"+id, nil); err != nil || res.status != http.StatusNoContent {
		g.log.Warn("purging migrated session's source copy failed; stale copy resurrects at source reboot",
			"session", id, "source", from, "err", err)
	}
	return nil
}

// readyNodeOtherThan picks the first ready ring member that is not
// excluded (deterministic: sorted node order).
func (g *Gateway) readyNodeOtherThan(excluded string) (string, bool) {
	for _, n := range g.ring.Nodes() {
		if n != excluded && g.health.Ready(n) {
			return n, true
		}
	}
	return "", false
}

// placements maps every reachable session to the node it lives on:
// each ready member's live list, plus standing overrides (which by
// construction point where their session actually lives).
func (g *Gateway) placements() map[string]string {
	place := make(map[string]string)
	for _, node := range g.ring.Nodes() {
		if !g.health.Ready(node) {
			continue
		}
		list, err := g.fetchSessions(node)
		if err != nil {
			g.log.Warn("listing sessions for rebalance", "node", node, "err", err)
			continue
		}
		for _, info := range list {
			place[info.ID] = node
		}
	}
	g.mu.RLock()
	for id, node := range g.overrides {
		place[id] = node
	}
	g.mu.RUnlock()
	return place
}

// join adds a node to the ring and migrates exactly the sessions whose
// ring owner changed. Placement is frozen (overrides) before the ring
// mutates, so requests keep routing to where sessions actually live
// throughout; each session's override lifts as its migration lands.
// Caller holds the admin semaphore.
func (g *Gateway) join(rawNode string) (RebalanceResponse, error) {
	node, err := normalizeNode(rawNode)
	if err != nil {
		return RebalanceResponse{}, &gwError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if g.ring.Has(node) {
		return RebalanceResponse{}, &gwError{status: http.StatusConflict,
			msg: fmt.Sprintf("node %s is already a ring member", node)}
	}
	if res, err := g.send(http.MethodGet, node, "/readyz", nil); err != nil || res.status != http.StatusOK {
		return RebalanceResponse{}, &gwError{status: http.StatusBadGateway,
			msg: fmt.Sprintf("node %s is not ready to join (err=%v)", node, err)}
	}

	place := g.placements()
	for id, owner := range place {
		g.setOverride(id, owner)
	}
	g.ring.Add(node)
	g.health.Watch(node)

	resp := g.rebalance(place)
	resp.Node = node
	resp.Members = g.ring.Nodes()
	g.metrics.rebalances.Add(1)
	g.log.Info("node joined", "node", node, "moved", resp.Moved, "failed", len(resp.Failed))
	return resp, nil
}

// leave drains a node out of the ring: its sessions migrate to their
// new ring owners, then the node is dropped from ring and health. With
// force, an unreachable node is removed without draining — its
// sessions' overrides are cleared so requests fall through to the ring
// (and 404 there) rather than 503-ing forever against a corpse.
// Caller holds the admin semaphore.
func (g *Gateway) leave(rawNode string, force bool) (RebalanceResponse, error) {
	node, err := normalizeNode(rawNode)
	if err != nil {
		return RebalanceResponse{}, &gwError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if !g.ring.Has(node) {
		return RebalanceResponse{}, &gwError{status: http.StatusNotFound,
			msg: fmt.Sprintf("node %s is not a ring member", node)}
	}

	if force {
		g.ring.Remove(node)
		g.health.Forget(node)
		g.mu.Lock()
		for id, n := range g.overrides {
			if n == node {
				delete(g.overrides, id)
			}
		}
		g.mu.Unlock()
		g.metrics.rebalances.Add(1)
		g.log.Warn("node force-removed; its sessions are offline until it returns", "node", node)
		return RebalanceResponse{Node: node, Members: g.ring.Nodes()}, nil
	}

	place := g.placements()
	for id, owner := range place {
		g.setOverride(id, owner)
	}
	g.ring.Remove(node)

	resp := g.rebalance(place)
	g.health.Forget(node)
	resp.Node = node
	resp.Members = g.ring.Nodes()
	g.metrics.rebalances.Add(1)
	g.log.Info("node left", "node", node, "moved", resp.Moved, "failed", len(resp.Failed))
	return resp, nil
}

// rebalance migrates every placed session whose current node disagrees
// with the (already mutated) ring, in sorted order for determinism.
// Successful moves lift their overrides inside handoff; sessions whose
// ring owner did not change lift theirs here; failures keep the
// override pinned to the old node, so the session keeps serving there
// and a later rebalance retries the move.
func (g *Gateway) rebalance(place map[string]string) RebalanceResponse {
	ids := make([]string, 0, len(place))
	for id := range place {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var resp RebalanceResponse
	for _, id := range ids {
		cur := place[id]
		want, ok := g.ring.Owner(id)
		if !ok {
			resp.Failed = append(resp.Failed, id)
			continue
		}
		if want == cur {
			g.clearOverride(id)
			continue
		}
		if err := g.handoff(id, cur, want); err != nil {
			g.log.Warn("rebalance migration failed; session stays on its old node",
				"session", id, "from", cur, "to", want, "err", err)
			resp.Failed = append(resp.Failed, id)
			continue
		}
		resp.Moved++
	}
	return resp
}
