package cluster

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calibsched/internal/server"
	"calibsched/internal/trace"
)

// Options tunes a Gateway. The zero value of every field is usable.
type Options struct {
	// Backends are the initial calibserved base URLs (e.g.
	// "http://127.0.0.1:8081"); more can join at runtime via
	// POST /v1/cluster/join.
	Backends []string
	// VNodes is the ring's virtual-node count per backend (default
	// DefaultVNodes).
	VNodes int
	// Client issues all backend requests (default http.DefaultClient;
	// cmd/calibgate installs one with sane timeouts).
	Client *http.Client
	// HealthInterval is the /readyz probe cadence; <= 0 disables probing
	// and treats every member as ready (tests).
	HealthInterval time.Duration
	// ProbeTimeout bounds one readiness probe (default 2s).
	ProbeTimeout time.Duration
	// Retries is how many times a failed backend send is re-issued
	// (default 2). Only transport failures retry — an HTTP error status
	// is a valid answer and passes through — and non-idempotent requests
	// retry only when the failure proves the request was never sent.
	Retries int
	// RetryBackoff is the base delay between retries, growing linearly
	// per attempt (default 50ms).
	RetryBackoff time.Duration
	// Logger receives request and migration records (default discard).
	Logger *slog.Logger
	// SpanStoreSize bounds the gateway's own request-trace store (default
	// 512 traces; negative disables proxy-span recording). Even with
	// recording disabled the gateway still forwards client traceparent
	// headers to the backends.
	SpanStoreSize int
	// SlowTraceThreshold marks traces whose proxy root exceeds it as
	// retained — they survive ring eviction ahead of fast traces. Zero
	// keeps plain FIFO eviction.
	SlowTraceThreshold time.Duration
	// Version is reported by the calibgate_build_info metric (default
	// "dev").
	Version string
}

// Gateway is the cluster front door: an http.Handler that
// consistent-hashes session IDs across calibserved backends, proxies
// the v1 API, and orchestrates live session migration. It holds no
// session state — routing is a pure function of the ring plus the
// transient override table maintained while a rebalance is in flight.
type Gateway struct {
	ring   *Ring
	health *Health
	client *http.Client
	mux    *http.ServeMux
	log    *slog.Logger
	opts   Options

	// overrides pins a session to a node regardless of the ring, for the
	// window where placement and ring disagree: during a join/leave
	// rebalance, and after a migration to an off-ring target. mu guards
	// only this map; no I/O ever happens under it.
	mu        sync.RWMutex
	overrides map[string]string

	// admin serializes migrate/join/leave. A channel semaphore instead
	// of a held mutex because these operations perform many backend
	// round-trips; a second admin request gets an immediate 409 rather
	// than queueing behind a slow rebalance.
	admin chan struct{}

	// idPrefix + idSeq generate session IDs at the gateway, which must
	// pick the ID before it can hash it onto a node. The random prefix
	// keeps two gateways (or a restarted one) from colliding.
	idPrefix string
	idSeq    atomic.Int64

	// spans records one proxy span per routed /v1 request (nil when
	// Options disable recording; every call site is nil-safe). The
	// trace handlers stitch these with the backends' fragments.
	spans *trace.SpanStore

	metrics gatewayMetrics
}

// gatewayMetrics are the gateway's own counters, appended to the
// aggregated /metrics as calibgate_*. Plain atomics rather than expvar:
// expvar's registry is process-global and panics on re-registration,
// which would forbid the multi-gateway setups the tests use.
type gatewayMetrics struct {
	proxied           atomic.Int64 // requests answered by a backend (any status)
	retries           atomic.Int64 // backend sends re-issued after a transport failure
	unroutable        atomic.Int64 // 503s for no-ready-owner (fail-open)
	proxyErrors       atomic.Int64 // 502s after retries were exhausted
	migrations        atomic.Int64 // sessions moved successfully
	migrationFailures atomic.Int64 // migrations that failed (session left on source)
	rebalances        atomic.Int64 // join/leave operations completed
}

// NewGateway builds a gateway over the given backends and starts its
// health prober.
func NewGateway(opts Options) (*Gateway, error) {
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var prefix [4]byte
	if _, err := rand.Read(prefix[:]); err != nil {
		return nil, fmt.Errorf("cluster: seeding session id prefix: %w", err)
	}
	g := &Gateway{
		ring:      NewRing(opts.VNodes),
		health:    NewHealth(opts.Client, opts.HealthInterval, opts.ProbeTimeout),
		client:    opts.Client,
		mux:       http.NewServeMux(),
		log:       opts.Logger,
		opts:      opts,
		overrides: make(map[string]string),
		admin:     make(chan struct{}, 1),
		idPrefix:  hex.EncodeToString(prefix[:]),
	}
	if opts.SpanStoreSize >= 0 {
		size := opts.SpanStoreSize
		if size == 0 {
			size = 512
		}
		g.spans = trace.NewSpanStore(size, opts.SlowTraceThreshold, "gateway")
	}
	for _, b := range opts.Backends {
		node, err := normalizeNode(b)
		if err != nil {
			g.health.Stop()
			return nil, err
		}
		g.ring.Add(node)
		g.health.Watch(node)
	}

	g.mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	g.mux.HandleFunc("GET /v1/sessions", g.handleList)
	g.mux.HandleFunc("POST /v1/sessions/import", g.handleBlocked)
	g.mux.HandleFunc("POST /v1/sessions/{id}/export", g.handleBlocked)
	g.mux.HandleFunc("GET /v1/sessions/{id}", g.handleSession)
	g.mux.HandleFunc("DELETE /v1/sessions/{id}", g.handleSession)
	g.mux.HandleFunc("POST /v1/sessions/{id}/arrivals", g.handleSession)
	g.mux.HandleFunc("POST /v1/sessions/{id}/step", g.handleSession)
	g.mux.HandleFunc("GET /v1/sessions/{id}/schedule", g.handleSession)
	g.mux.HandleFunc("GET /v1/sessions/{id}/trace", g.handleSession)
	g.mux.HandleFunc("POST /v1/solve", g.handleSolveSubmit)
	g.mux.HandleFunc("GET /v1/solve/{id}", g.handleSolveGet)
	g.mux.HandleFunc("POST /v1/cluster/migrate", g.handleMigrate)
	g.mux.HandleFunc("POST /v1/cluster/join", g.handleJoin)
	g.mux.HandleFunc("POST /v1/cluster/leave", g.handleLeave)
	g.mux.HandleFunc("GET /v1/cluster/nodes", g.handleNodes)
	g.mux.HandleFunc("GET /v1/traces", g.handleTraceList)
	g.mux.HandleFunc("GET /v1/traces/{traceID}", g.handleTraceGet)
	g.mux.HandleFunc("GET /healthz", g.handleHealth)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Close stops the health prober. In-flight proxied requests finish on
// their own; the gateway holds nothing else.
func (g *Gateway) Close() { g.health.Stop() }

// Ring exposes the hash ring (tests and cmd wiring).
func (g *Gateway) Ring() *Ring { return g.ring }

func normalizeNode(b string) (string, error) {
	n := strings.TrimRight(strings.TrimSpace(b), "/")
	if !strings.HasPrefix(n, "http://") && !strings.HasPrefix(n, "https://") {
		return "", fmt.Errorf("cluster: backend %q is not an http(s) base URL", b)
	}
	return n, nil
}

// gatewayTraced reports whether a request path gets a proxy root span:
// the routed /v1 API only. The trace API itself is excluded (reading
// traces must not mint them) and so are the cluster admin endpoints,
// which are operator actions rather than request traffic.
func gatewayTraced(p string) bool {
	return strings.HasPrefix(p, "/v1/") &&
		!strings.HasPrefix(p, "/v1/traces") &&
		!strings.HasPrefix(p, "/v1/cluster")
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusCapture{ResponseWriter: w, status: http.StatusOK}
	ctx := r.Context()
	var act *trace.Active
	if g.spans != nil && gatewayTraced(r.URL.Path) {
		parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
		act = g.spans.StartSpan(trace.PhaseProxy, parent, map[string]string{
			"method": r.Method,
			"path":   r.URL.Path,
		})
		ctx = trace.WithActive(ctx, act)
		// Tell the client which trace its request landed in, whether the
		// trace was minted here or continued from the request header.
		w.Header().Set("traceparent", trace.FormatTraceparent(act.Context()))
	}
	g.mux.ServeHTTP(sw, r.WithContext(ctx))
	if act != nil {
		act.SetAttr("status", strconv.Itoa(sw.status))
		act.Finish()
	}
	g.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("latency", time.Since(start)))
}

// forwardTraceparent is the traceparent header value a backend send on
// behalf of this request should carry: the gateway's own proxy span when
// one is open (so the backend's http span nests under it), else the
// client's header verbatim (recording off here must not break the
// client-to-backend trace).
func forwardTraceparent(r *http.Request) string {
	if act := trace.ActiveFrom(r.Context()); act != nil {
		return trace.FormatTraceparent(act.Context())
	}
	return r.Header.Get("traceparent")
}

type statusCapture struct {
	http.ResponseWriter
	status int
}

func (w *statusCapture) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// newSessionID mints a gateway-chosen session ID.
func (g *Gateway) newSessionID() string {
	return fmt.Sprintf("g-%s-%06d", g.idPrefix, g.idSeq.Add(1))
}

// route returns the node a session ID maps to: the override table wins
// (a rebalance or off-ring migration is pinning it), then the ring.
func (g *Gateway) route(id string) (string, bool) {
	g.mu.RLock()
	node, ok := g.overrides[id]
	g.mu.RUnlock()
	if ok {
		return node, true
	}
	return g.ring.Owner(id)
}

func (g *Gateway) setOverride(id, node string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.overrides[id] = node
}

func (g *Gateway) clearOverride(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.overrides, id)
}

// sendResult is one backend exchange: any HTTP status is a success at
// this layer (the backend answered; its verdict passes through).
type sendResult struct {
	status int
	header http.Header
	body   []byte
}

// send issues an untraced backend exchange (health probes, scrapes,
// migration plumbing); see sendTraced.
func (g *Gateway) send(method, node, path string, body []byte) (sendResult, error) {
	return g.sendTraced(method, node, path, body, "")
}

// sendTraced issues method path to node with up to 1+Retries attempts,
// carrying traceparent (when non-empty) so the backend joins the
// request's trace. Transport failures retry with linear backoff; an HTTP
// status never retries here (the caller decides what a 503 means).
// Non-idempotent methods retry only on dial failures — the one failure
// class that proves the request never reached the backend, so a retry
// cannot double-apply a step or an arrivals batch.
func (g *Gateway) sendTraced(method, node, path string, body []byte, traceparent string) (sendResult, error) {
	var lastErr error
	for attempt := 0; attempt <= g.opts.Retries; attempt++ {
		if attempt > 0 {
			g.metrics.retries.Add(1)
			time.Sleep(time.Duration(attempt) * g.opts.RetryBackoff)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, node+path, rd)
		if err != nil {
			return sendResult{}, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			lastErr = err
			if isDialError(err) {
				// The backend is unreachable: tell the health table now
				// instead of waiting a probe cycle, and retry freely (the
				// request never left the gateway).
				g.health.MarkUnready(node)
				continue
			}
			if idempotent(method) {
				continue
			}
			// A non-idempotent request failed after it may have been sent
			// (connection dropped mid-exchange). Retrying could apply the
			// command twice — surface the failure instead.
			return sendResult{}, lastErr
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			if idempotent(method) {
				continue
			}
			return sendResult{}, lastErr
		}
		return sendResult{status: resp.StatusCode, header: resp.Header, body: respBody}, nil
	}
	return sendResult{}, lastErr
}

// maxProxyBody bounds a relayed backend response; matches the backend's
// own request-body bound.
const maxProxyBody = 8 << 20

func idempotent(method string) bool {
	return method == http.MethodGet || method == http.MethodHead || method == http.MethodDelete
}

func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// relay writes a backend's answer through to the client.
func (g *Gateway) relay(w http.ResponseWriter, res sendResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	if _, err := w.Write(res.body); err != nil {
		// Client went away; nothing to do.
		_ = err
	}
	g.metrics.proxied.Add(1)
}

// proxyTo forwards the request body to the session's node and relays
// the answer, with the fail-open contract: an unready owner is an
// immediate 503 + Retry-After (the client backs off and retries once
// the node recovers or the session migrates), and exhausted transport
// retries are a 502.
func (g *Gateway) proxyTo(w http.ResponseWriter, node, method, path string, body []byte, traceparent string) {
	if !g.health.Ready(node) {
		g.metrics.unroutable.Add(1)
		writeRetryError(w, http.StatusServiceUnavailable, fmt.Sprintf("node %s is not ready; retry shortly", node))
		return
	}
	res, err := g.sendTraced(method, node, path, body, traceparent)
	if err != nil {
		g.metrics.proxyErrors.Add(1)
		writeRetryError(w, http.StatusBadGateway, fmt.Sprintf("node %s unreachable: %v", node, err))
		return
	}
	g.relay(w, res)
}

// readBody buffers a request body (bounded) so it can be re-sent on
// retry. Returns nil on a bodyless request.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, nil
	}
	return body, nil
}

func writeGatewayJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = err // headers are gone; drop the connection
	}
}

func writeGatewayError(w http.ResponseWriter, status int, msg string) {
	writeGatewayJSON(w, status, server.ErrorResponse{Error: msg})
}

func writeRetryError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", "1")
	writeGatewayError(w, status, msg)
}

// handleCreate mints the session ID (unless the client pinned one),
// hashes it onto a node, and forwards the create there.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	var req server.CreateSessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("malformed request body: %v", err))
		return
	}
	if req.ID == "" {
		req.ID = g.newSessionID()
	}
	node, ok := g.route(req.ID)
	if !ok {
		g.metrics.unroutable.Add(1)
		writeRetryError(w, http.StatusServiceUnavailable, "no backends in the ring")
		return
	}
	out, err := json.Marshal(req)
	if err != nil {
		writeGatewayError(w, http.StatusInternalServerError, err.Error())
		return
	}
	trace.ActiveFrom(r.Context()).SetAttr("node", node)
	g.proxyTo(w, node, http.MethodPost, "/v1/sessions", out, forwardTraceparent(r))
}

// handleSession routes a session-scoped request by its ID.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, ok := g.route(id)
	if !ok {
		g.metrics.unroutable.Add(1)
		writeRetryError(w, http.StatusServiceUnavailable, "no backends in the ring")
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	trace.ActiveFrom(r.Context()).SetAttr("node", node)
	g.proxyTo(w, node, r.Method, path, body, forwardTraceparent(r))
}

// handleBlocked rejects the node-internal migration endpoints: handoff
// through the gateway goes via POST /v1/cluster/migrate, which keeps
// the routing table consistent with where sessions actually live.
func (g *Gateway) handleBlocked(w http.ResponseWriter, r *http.Request) {
	writeGatewayError(w, http.StatusForbidden,
		"session import/export is node-internal; use POST /v1/cluster/migrate")
}

// handleList merges the session lists of every ring member. Unready or
// unreachable nodes are skipped — their sessions are unroutable right
// now anyway — so the listing is best-effort by design.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	merged := server.SessionListResponse{Sessions: []server.SessionInfo{}}
	for _, node := range g.ring.Nodes() {
		if !g.health.Ready(node) {
			continue
		}
		list, err := g.fetchSessions(node)
		if err != nil {
			g.log.Warn("listing sessions", "node", node, "err", err)
			continue
		}
		merged.Sessions = append(merged.Sessions, list...)
	}
	sortInfos(merged.Sessions)
	g.metrics.proxied.Add(1)
	writeGatewayJSON(w, http.StatusOK, merged)
}

// fetchSessions lists one node's live sessions.
func (g *Gateway) fetchSessions(node string) ([]server.SessionInfo, error) {
	res, err := g.send(http.MethodGet, node, "/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	if res.status != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", res.status, strings.TrimSpace(string(res.body)))
	}
	var list server.SessionListResponse
	if err := json.Unmarshal(res.body, &list); err != nil {
		return nil, fmt.Errorf("decoding session list: %w", err)
	}
	return list.Sessions, nil
}

func sortInfos(infos []server.SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// nodeToken is the stable short handle a node is addressed by inside
// composite solve IDs ("<token>~<handle>"). Derived from the node URL,
// so any gateway over the same backend set resolves the same tokens —
// the gateway stays stateless.
func nodeToken(node string) string {
	return fmt.Sprintf("%08x", uint32(hash64(node)>>32))
}

func (g *Gateway) nodeByToken(token string) (string, bool) {
	for _, n := range g.ring.Nodes() {
		if nodeToken(n) == token {
			return n, true
		}
	}
	return "", false
}

// handleSolveSubmit routes an offline solve by the hash of its body, so
// identical submissions land on the same node and share its result
// cache, and rewrites the returned handle to carry the node token.
func (g *Gateway) handleSolveSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	node, ok := g.ring.Owner("solve:" + fmt.Sprintf("%016x", hash64(string(body))))
	if !ok {
		g.metrics.unroutable.Add(1)
		writeRetryError(w, http.StatusServiceUnavailable, "no backends in the ring")
		return
	}
	if !g.health.Ready(node) {
		// Solves are stateless; any ready node can take one. Prefer the
		// hash owner for cache locality, fall back to anyone alive.
		node, ok = g.anyReadyNode()
		if !ok {
			g.metrics.unroutable.Add(1)
			writeRetryError(w, http.StatusServiceUnavailable, "no ready backends")
			return
		}
	}
	trace.ActiveFrom(r.Context()).SetAttr("node", node)
	res, err := g.sendTraced(http.MethodPost, node, "/v1/solve", body, forwardTraceparent(r))
	if err != nil {
		g.metrics.proxyErrors.Add(1)
		writeRetryError(w, http.StatusBadGateway, fmt.Sprintf("node %s unreachable: %v", node, err))
		return
	}
	if res.status == http.StatusAccepted || res.status == http.StatusOK {
		var sub server.SolveSubmitResponse
		if err := json.Unmarshal(res.body, &sub); err == nil && sub.ID != "" {
			sub.ID = nodeToken(node) + "~" + sub.ID
			g.metrics.proxied.Add(1)
			writeGatewayJSON(w, res.status, sub)
			return
		}
	}
	g.relay(w, res)
}

// handleSolveGet resolves a composite solve handle back to its node.
func (g *Gateway) handleSolveGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	token, handle, ok := strings.Cut(id, "~")
	if !ok {
		writeGatewayError(w, http.StatusBadRequest, fmt.Sprintf(
			"solve id %q is not a gateway handle (want <node>~<handle>)", id))
		return
	}
	node, ok := g.nodeByToken(token)
	if !ok {
		writeGatewayError(w, http.StatusNotFound, fmt.Sprintf(
			"solve handle %q names a node no longer in the ring", id))
		return
	}
	if !g.health.Ready(node) {
		g.metrics.unroutable.Add(1)
		writeRetryError(w, http.StatusServiceUnavailable, fmt.Sprintf("node %s is not ready; retry shortly", node))
		return
	}
	trace.ActiveFrom(r.Context()).SetAttr("node", node)
	res, err := g.sendTraced(http.MethodGet, node, "/v1/solve/"+handle, nil, forwardTraceparent(r))
	if err != nil {
		g.metrics.proxyErrors.Add(1)
		writeRetryError(w, http.StatusBadGateway, fmt.Sprintf("node %s unreachable: %v", node, err))
		return
	}
	if res.status == http.StatusOK {
		var st server.SolveStatusResponse
		if err := json.Unmarshal(res.body, &st); err == nil && st.ID != "" {
			st.ID = token + "~" + st.ID
			g.metrics.proxied.Add(1)
			writeGatewayJSON(w, res.status, st)
			return
		}
	}
	g.relay(w, res)
}

func (g *Gateway) anyReadyNode() (string, bool) {
	for _, n := range g.ring.Nodes() {
		if g.health.Ready(n) {
			return n, true
		}
	}
	return "", false
}

// ClusterNode is one member's status in GET /v1/cluster/nodes.
type ClusterNode struct {
	Node     string `json:"node"`
	Ready    bool   `json:"ready"`
	Sessions int    `json:"sessions"`
}

// ClusterNodesResponse is the GET /v1/cluster/nodes body.
type ClusterNodesResponse struct {
	Nodes []ClusterNode `json:"nodes"`
}

func (g *Gateway) handleNodes(w http.ResponseWriter, r *http.Request) {
	resp := ClusterNodesResponse{Nodes: []ClusterNode{}}
	for _, node := range g.ring.Nodes() {
		cn := ClusterNode{Node: node, Ready: g.health.Ready(node), Sessions: -1}
		if cn.Ready {
			if list, err := g.fetchSessions(node); err == nil {
				cn.Sessions = len(list)
			}
		}
		resp.Nodes = append(resp.Nodes, cn)
	}
	writeGatewayJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	ready := 0
	nodes := g.ring.Nodes()
	for _, n := range nodes {
		if g.health.Ready(n) {
			ready++
		}
	}
	writeGatewayJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "nodes": len(nodes), "ready": ready,
	})
}
