// Package lp provides the linear-programming substrate behind the paper's
// primal–dual analysis of Algorithm 3 (Figures 1 and 2): a from-scratch
// two-phase dense-tableau simplex solver with Bland's anti-cycling rule, a
// mechanical dualizer, and the time-indexed calibration LP of Figure 1
// together with the embedding that maps any schedule to a feasible primal
// point. Experiment E10 uses these to verify weak and strong duality and
// to compute machine-checked lower bounds on OPT for multi-machine
// instances.
package lp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // ==
)

// Constraint is one linear constraint: A . x  (rel)  B.
type Constraint struct {
	A   []float64
	Rel Rel
	B   float64
}

// Problem is a linear program in n >= 0 variables x >= 0, minimizing C . x
// subject to the constraints. (Maximization is expressed by negating C and
// the resulting objective.)
//
// Workers > 1 parallelizes the row updates of each pivot across that many
// goroutines (0 means GOMAXPROCS, 1 forces serial). Row updates are
// independent, so the result is bit-identical to the serial solve; the
// speedup matters for the larger time-indexed calibration LPs.
type Problem struct {
	C           []float64
	Constraints []Constraint
	Workers     int
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.C) }

// AddConstraint appends a constraint; a is copied.
func (p *Problem) AddConstraint(a []float64, rel Rel, b float64) {
	row := make([]float64, len(a))
	copy(row, a)
	p.Constraints = append(p.Constraints, Constraint{A: row, Rel: rel, B: b})
}

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution is a solver result. X and Objective are meaningful only for
// Status == Optimal.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solve minimizes the problem with the two-phase simplex method on a
// dense tableau: Dantzig's most-negative-reduced-cost rule for speed with
// a fall back to Bland's rule (guaranteed termination) if iteration counts
// suggest cycling. Suitable for the small/medium time-indexed LPs this
// package constructs.
func (p *Problem) Solve() (*Solution, error) {
	n := p.NumVars()
	m := len(p.Constraints)
	for i, c := range p.Constraints {
		if len(c.A) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(c.A), n)
		}
	}

	// Standardize: every constraint gets b >= 0; LE rows a slack, GE rows
	// a surplus plus an artificial, EQ rows an artificial.
	type rowSpec struct {
		a   []float64
		b   float64
		rel Rel
	}
	rows := make([]rowSpec, m)
	for i, c := range p.Constraints {
		a := make([]float64, n)
		copy(a, c.A)
		b := c.B
		rel := c.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		// A ">= 0" row is equivalent to "-a . x <= 0", which gets a basic
		// slack instead of an artificial: time-indexed LPs are dominated
		// by such rows, and avoiding their artificials keeps phase 1 tiny.
		if rel == GE && b == 0 {
			for j := range a {
				a[j] = -a[j]
			}
			rel = LE
		}
		rows[i] = rowSpec{a, b, rel}
	}
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows x (total+1) columns (last = RHS), plus basis list.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt := n
	artAt := n + nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.a)
		row[total] = r.b
		switch r.rel {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
		tab[i] = row
	}

	// zrow is the reduced-cost row of the current objective, maintained by
	// pivoting alongside the constraint rows.
	zrow := make([]float64, total+1)
	workers := p.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Parallel row elimination only pays for its goroutine handoffs on
	// larger tableaus.
	parallel := workers > 1 && m >= 192
	eliminate := func(rows [][]float64, c int, pr []float64) {
		for _, row := range rows {
			factor := row[c]
			if factor == 0 {
				continue
			}
			for j := range row {
				row[j] -= factor * pr[j]
			}
		}
	}
	pivot := func(r, c int) {
		pr := tab[r]
		pv := pr[c]
		for j := range pr {
			pr[j] /= pv
		}
		// Eliminate the pivot column from every other row. Rows are
		// mutually independent, so chunks can run concurrently with
		// results identical to the serial loop.
		if parallel {
			others := make([][]float64, 0, m-1)
			for i := range tab {
				if i != r {
					others = append(others, tab[i])
				}
			}
			chunk := (len(others) + workers - 1) / workers
			var wg sync.WaitGroup
			for lo := 0; lo < len(others); lo += chunk {
				hi := lo + chunk
				if hi > len(others) {
					hi = len(others)
				}
				wg.Add(1)
				go func(rows [][]float64) {
					defer wg.Done()
					eliminate(rows, c, pr)
				}(others[lo:hi])
			}
			wg.Wait()
		} else {
			for i := range tab {
				if i == r {
					continue
				}
				factor := tab[i][c]
				if factor == 0 {
					continue
				}
				for j := range tab[i] {
					tab[i][j] -= factor * pr[j]
				}
			}
		}
		if factor := zrow[c]; factor != 0 {
			for j := range zrow {
				zrow[j] -= factor * pr[j]
			}
		}
		basis[r] = c
	}

	// runSimplex minimizes objective coefficients obj (length total) over
	// the current tableau; returns false if unbounded. Pivoting uses
	// Dantzig's rule for speed, falling back to Bland's rule (guaranteed
	// termination) once the iteration count suggests cycling.
	runSimplex := func(obj []float64, forbid map[int]bool) bool {
		rebuildZ := func() {
			for j := 0; j < total; j++ {
				zrow[j] = obj[j]
			}
			zrow[total] = 0
			for i, b := range basis {
				if factor := zrow[b]; factor != 0 {
					for j := range zrow {
						zrow[j] -= factor * tab[i][j]
					}
				}
			}
		}
		rebuildZ()
		rebuilt := false
		const blandAfter = 5000
		for iter := 0; ; iter++ {
			if iter > 500000 {
				panic("lp: simplex iteration budget exhausted")
			}
			entering := -1
			if iter < blandAfter {
				most := -eps
				for j := 0; j < total; j++ {
					if forbid[j] {
						continue
					}
					if zrow[j] < most {
						most = zrow[j]
						entering = j
					}
				}
			} else {
				for j := 0; j < total; j++ {
					if !forbid[j] && zrow[j] < -eps {
						entering = j
						break
					}
				}
			}
			if entering == -1 {
				// Guard against drift in the incrementally maintained
				// zrow: confirm optimality against exact reduced costs
				// once before accepting it.
				if !rebuilt {
					rebuildZ()
					rebuilt = true
					continue
				}
				return true
			}
			// Ratio test with Bland's tie-break (smallest basis index).
			leaving := -1
			best := math.Inf(1)
			for i := range tab {
				coef := tab[i][entering]
				if coef > eps {
					ratio := tab[i][total] / coef
					if ratio < best-eps || (ratio < best+eps && (leaving == -1 || basis[i] < basis[leaving])) {
						best = ratio
						leaving = i
					}
				}
			}
			if leaving == -1 {
				// Apparent unboundedness can also be zrow drift: verify
				// with exact reduced costs before concluding.
				if !rebuilt {
					rebuildZ()
					rebuilt = true
					continue
				}
				if zrow[entering] >= -eps {
					rebuilt = false
					continue
				}
				return false
			}
			rebuilt = false
			pivot(leaving, entering)
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		obj1 := make([]float64, total)
		for _, c := range artCols {
			obj1[c] = 1
		}
		if !runSimplex(obj1, nil) {
			return nil, fmt.Errorf("lp: phase-1 unbounded (cannot happen)")
		}
		sum := 0.0
		isArt := make(map[int]bool, nArt)
		for _, c := range artCols {
			isArt[c] = true
		}
		for i := range tab {
			if isArt[basis[i]] {
				sum += tab[i][total]
			}
		}
		if sum > 1e-6 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive remaining (degenerate) artificials out of the basis.
		for i := range tab {
			if !isArt[basis[i]] {
				continue
			}
			swapped := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(i, j)
					swapped = true
					break
				}
			}
			if !swapped {
				// Redundant row: the artificial stays basic at zero; it is
				// harmless as long as phase 2 forbids re-entering
				// artificials.
				continue
			}
		}
	}

	// Phase 2: original objective (artificials forbidden).
	obj2 := make([]float64, total)
	copy(obj2, p.C)
	forbid := make(map[int]bool, nArt)
	for _, c := range artCols {
		forbid[c] = true
	}
	if !runSimplex(obj2, forbid) {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	objective := 0.0
	for j := range x {
		objective += p.C[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: objective}, nil
}

// FeasibleAt reports whether x satisfies every constraint of the problem
// within tolerance tol, returning a descriptive error for the first
// violation.
func (p *Problem) FeasibleAt(x []float64, tol float64) error {
	if len(x) != p.NumVars() {
		return fmt.Errorf("lp: point has %d coordinates for %d variables", len(x), p.NumVars())
	}
	for j, v := range x {
		if v < -tol {
			return fmt.Errorf("lp: x[%d] = %g < 0", j, v)
		}
	}
	for i, c := range p.Constraints {
		dot := 0.0
		for j := range c.A {
			dot += c.A[j] * x[j]
		}
		switch c.Rel {
		case LE:
			if dot > c.B+tol {
				return fmt.Errorf("lp: constraint %d: %g > %g", i, dot, c.B)
			}
		case GE:
			if dot < c.B-tol {
				return fmt.Errorf("lp: constraint %d: %g < %g", i, dot, c.B)
			}
		case EQ:
			if math.Abs(dot-c.B) > tol {
				return fmt.Errorf("lp: constraint %d: %g != %g", i, dot, c.B)
			}
		}
	}
	return nil
}

// Objective evaluates C . x.
func (p *Problem) Objective(x []float64) float64 {
	obj := 0.0
	for j := range p.C {
		obj += p.C[j] * x[j]
	}
	return obj
}
