package lp

import (
	"fmt"

	"calibsched/internal/core"
)

// CalibrationLP is the time-indexed primal of Figure 1 over a finite
// horizon [0, H): variables f_{t,j} (job j incurs flow at step t), c_{t,m}
// (an interval begins on machine m at t), and a_{j,m} (job j assigned to
// machine m), objective
//
//	minimize  sum_{t,j} w_j * f_{t,j} + G * sum_{t,m} c_{t,m}
//
// subject to the paper's four constraint families:
//
//  1. f_{t,j} + sum_{t'=max(0,r_j-T+1)}^{t} c_{t',m} - a_{j,m} >= 0
//     for all j, t >= r_j, m — until some calibration on j's machine can
//     serve it, the job keeps flowing. (The paper prints the window's
//     lower end as r_j - T; an interval started before r_j - T + 1 ends
//     at or before r_j and cannot run j, so the tightened window is the
//     evident intent and remains valid for every schedule.)
//  2. sum_{j: r_j < t} (f_{t,j} - f_{t-1,j}) + sum_m sum_{t'=max(0,t-T)}^{t}
//     c_{t',m} >= 0 for all t — flow can drop by at most one per machine
//     per step, and only near calibrations.
//  3. sum_m a_{j,m} >= 1 for all j.
//  4. f_{r_j,j} = 1 for all j.
//
// Every valid schedule that finishes within the horizon maps to a feasible
// 0/1 point with objective equal to its total cost (Embed), so the LP
// optimum lower-bounds OPT.
//
// The paper states the LP for the unweighted Section 3.3 setting (w_j =
// 1); weighting the objective is the evident generalization and keeps
// every constraint valid for every schedule, so the optimum remains a
// certified lower bound — experiment E15 uses it to evaluate the weighted
// multi-machine extension.
type CalibrationLP struct {
	Problem *Problem
	in      *core.Instance
	g       int64
	horizon int64
	nf      int // number of f variables (horizon*n)
	nc      int // number of c variables (horizon*P)
}

// fVar, cVar, aVar index into the flat variable vector.
func (l *CalibrationLP) fVar(t int64, j int) int { return int(t)*l.in.N() + j }
func (l *CalibrationLP) cVar(t int64, m int) int { return l.nf + int(t)*l.in.P + m }
func (l *CalibrationLP) aVar(j, m int) int       { return l.nf + l.nc + j*l.in.P + m }

// DefaultHorizon returns a horizon certainly containing an optimal
// schedule: in any optimum of the G-cost objective no job waits more than
// G+T steps (a dedicated calibration at its release would otherwise be
// cheaper, since weights are >= 1), so maxRelease + G + T + 2 time steps
// suffice.
func DefaultHorizon(in *core.Instance, g int64) int64 {
	return in.MaxRelease() + g + in.T + 2
}

// NewCalibrationLP builds the Figure 1 primal for the instance (weighted
// objective; see the type comment). Horizon must cover every schedule of
// interest; DefaultHorizon(in, g) is always safe for optimal schedules.
func NewCalibrationLP(in *core.Instance, g, horizon int64) (*CalibrationLP, error) {
	if g < 0 {
		return nil, fmt.Errorf("lp: negative G %d", g)
	}
	if horizon <= in.MaxRelease() {
		return nil, fmt.Errorf("lp: horizon %d does not cover last release %d", horizon, in.MaxRelease())
	}
	n := in.N()
	l := &CalibrationLP{
		in:      in,
		g:       g,
		horizon: horizon,
		nf:      int(horizon) * n,
		nc:      int(horizon) * in.P,
	}
	total := l.nf + l.nc + n*in.P
	prob := &Problem{C: make([]float64, total)}
	for t := int64(0); t < horizon; t++ {
		for j := 0; j < n; j++ {
			prob.C[l.fVar(t, j)] = float64(in.Jobs[j].Weight)
		}
		for m := 0; m < in.P; m++ {
			prob.C[l.cVar(t, m)] = float64(g)
		}
	}

	// Family 1.
	for j := 0; j < n; j++ {
		rj := in.Jobs[j].Release
		for t := rj; t < horizon; t++ {
			for m := 0; m < in.P; m++ {
				a := make([]float64, total)
				a[l.fVar(t, j)] = 1
				lo := rj - in.T + 1
				if lo < 0 {
					lo = 0
				}
				for tp := lo; tp <= t; tp++ {
					a[l.cVar(tp, m)] += 1
				}
				a[l.aVar(j, m)] = -1
				prob.Constraints = append(prob.Constraints, Constraint{A: a, Rel: GE, B: 0})
			}
		}
	}
	// Family 2.
	for t := int64(1); t < horizon; t++ {
		a := make([]float64, total)
		for j := 0; j < n; j++ {
			if in.Jobs[j].Release < t {
				a[l.fVar(t, j)] += 1
				a[l.fVar(t-1, j)] -= 1
			}
		}
		lo := t - in.T
		if lo < 0 {
			lo = 0
		}
		for m := 0; m < in.P; m++ {
			for tp := lo; tp <= t; tp++ {
				a[l.cVar(tp, m)] += 1
			}
		}
		prob.Constraints = append(prob.Constraints, Constraint{A: a, Rel: GE, B: 0})
	}
	// Family 3.
	for j := 0; j < n; j++ {
		a := make([]float64, total)
		for m := 0; m < in.P; m++ {
			a[l.aVar(j, m)] = 1
		}
		prob.Constraints = append(prob.Constraints, Constraint{A: a, Rel: GE, B: 1})
	}
	// Family 4.
	for j := 0; j < n; j++ {
		a := make([]float64, total)
		a[l.fVar(in.Jobs[j].Release, j)] = 1
		prob.Constraints = append(prob.Constraints, Constraint{A: a, Rel: EQ, B: 1})
	}
	l.Problem = prob
	return l, nil
}

// Embed maps a valid schedule (finishing within the horizon) to the
// canonical 0/1 primal point: f_{t,j} = 1 while j waits (r_j <= t <= start),
// c_{t,m} = 1 where intervals begin, a_{j,m} = 1 on j's machine. The
// point's objective equals the schedule's total cost.
func (l *CalibrationLP) Embed(s *core.Schedule) ([]float64, error) {
	x := make([]float64, l.Problem.NumVars())
	for _, j := range l.in.Jobs {
		a := s.Assignments[j.ID]
		if a.Start+1 > l.horizon {
			return nil, fmt.Errorf("lp: job %d finishes at %d beyond horizon %d", j.ID, a.Start+1, l.horizon)
		}
		for t := j.Release; t <= a.Start; t++ {
			x[l.fVar(t, j.ID)] = 1
		}
		x[l.aVar(j.ID, a.Machine)] = 1
	}
	for _, c := range s.Calendar {
		if c.Start >= l.horizon {
			return nil, fmt.Errorf("lp: calibration at %d beyond horizon %d", c.Start, l.horizon)
		}
		x[l.cVar(c.Start, c.Machine)] += 1
	}
	return x, nil
}

// LowerBound solves the LP and returns its optimum: a certified lower
// bound on the total cost of any schedule completing within the horizon.
func (l *CalibrationLP) LowerBound() (float64, error) {
	sol, err := l.Problem.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != Optimal {
		return 0, fmt.Errorf("lp: primal solve status %v", sol.Status)
	}
	return sol.Objective, nil
}
