package lp

// Dual mechanically constructs the LP dual of a minimization problem with
// nonnegative variables, mirroring how Figure 2 of the paper is obtained
// from Figure 1.
//
// The primal min{c.x : rows, x >= 0} is first normalized so every row is a
// ">=" row (LE rows are negated; EQ rows become a GE pair). The dual is
// then max{b.y : A^T y <= c, y >= 0}, returned — to stay within Problem's
// minimize-only convention — as min{(-b).y : A^T y <= c, y >= 0}; callers
// negate the reported objective to read the dual bound. Weak duality:
// -dual.Objective <= primal optimum for every pair of feasible points.
func Dual(p *Problem) *Problem {
	n := p.NumVars()
	// Normalize to GE rows.
	type row struct {
		a []float64
		b float64
	}
	var rows []row
	for _, c := range p.Constraints {
		switch c.Rel {
		case GE:
			rows = append(rows, row{c.A, c.B})
		case LE:
			neg := make([]float64, n)
			for j := range c.A {
				neg[j] = -c.A[j]
			}
			rows = append(rows, row{neg, -c.B})
		case EQ:
			neg := make([]float64, n)
			for j := range c.A {
				neg[j] = -c.A[j]
			}
			rows = append(rows, row{c.A, c.B}, row{neg, -c.B})
		}
	}
	m := len(rows)
	dual := &Problem{C: make([]float64, m)}
	for i, r := range rows {
		dual.C[i] = -r.b // minimize -b.y  ==  maximize b.y
	}
	for j := 0; j < n; j++ {
		a := make([]float64, m)
		for i, r := range rows {
			a[i] = r.a[j]
		}
		dual.AddConstraint(a, LE, p.C[j])
	}
	return dual
}

// DualObjective converts a Dual() solution objective back to the
// maximization reading used in weak-duality statements.
func DualObjective(sol *Solution) float64 { return -sol.Objective }
