package lp

import (
	"math"
	"math/rand/v2"
	"testing"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
)

func TestSimplexTextbook(t *testing.T) {
	// min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj -36.
	p := &Problem{C: []float64{-3, -5}}
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective+36) > 1e-6 || math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Fatalf("got x=%v obj=%f, want (2,6) obj -36", sol.X, sol.Objective)
	}
}

func TestSimplexGEAndEQ(t *testing.T) {
	// min x + 2y s.t. x + y >= 3, x == 1 -> y=2, obj 5.
	p := &Problem{C: []float64{1, 2}}
	p.AddConstraint([]float64{1, 1}, GE, 3)
	p.AddConstraint([]float64{1, 0}, EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("status %v obj %f, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := &Problem{C: []float64{1}}
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := &Problem{C: []float64{-1, 0}}
	p.AddConstraint([]float64{0, 1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -4 (i.e. x >= 4).
	p := &Problem{C: []float64{1}}
	p.AddConstraint([]float64{-1}, LE, -4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("got %v %f, want optimal 4", sol.Status, sol.Objective)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Classic degenerate corner; Bland's rule must terminate.
	p := &Problem{C: []float64{-0.75, 150, -0.02, 6}}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective+0.05) > 1e-6 {
		t.Fatalf("got %v %f, want optimal -0.05", sol.Status, sol.Objective)
	}
}

func TestSimplexDimensionMismatch(t *testing.T) {
	p := &Problem{C: []float64{1, 2}}
	p.Constraints = append(p.Constraints, Constraint{A: []float64{1}, Rel: GE, B: 0})
	if _, err := p.Solve(); err == nil {
		t.Error("accepted mismatched constraint width")
	}
}

func TestFeasibleAt(t *testing.T) {
	p := &Problem{C: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, GE, 2)
	p.AddConstraint([]float64{1, 0}, LE, 5)
	p.AddConstraint([]float64{0, 1}, EQ, 1)
	if err := p.FeasibleAt([]float64{1, 1}, 1e-9); err != nil {
		t.Errorf("feasible point rejected: %v", err)
	}
	if err := p.FeasibleAt([]float64{0.5, 1}, 1e-9); err == nil {
		t.Error("infeasible point accepted (GE violated)")
	}
	if err := p.FeasibleAt([]float64{6, 1}, 1e-9); err == nil {
		t.Error("infeasible point accepted (LE violated)")
	}
	if err := p.FeasibleAt([]float64{1, 2}, 1e-9); err == nil {
		t.Error("infeasible point accepted (EQ violated)")
	}
	if err := p.FeasibleAt([]float64{-1, 1}, 1e-9); err == nil {
		t.Error("negative coordinate accepted")
	}
	if err := p.FeasibleAt([]float64{1}, 1e-9); err == nil {
		t.Error("wrong dimension accepted")
	}
}

// TestStrongDualityRandom: for random feasible bounded LPs, the dual
// optimum (maximization reading) must match the primal optimum.
func TestStrongDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 15))
	solved := 0
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.IntN(4)
		m := 1 + rng.IntN(4)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = float64(1 + rng.IntN(9)) // positive costs keep it bounded
		}
		for i := 0; i < m; i++ {
			a := make([]float64, n)
			for j := range a {
				a[j] = float64(rng.IntN(5))
			}
			p.AddConstraint(a, GE, float64(rng.IntN(10)))
		}
		psol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if psol.Status != Optimal {
			continue // all-zero row with positive rhs etc.
		}
		d := Dual(p)
		dsol, err := d.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if dsol.Status != Optimal {
			t.Fatalf("trial %d: primal optimal but dual %v", trial, dsol.Status)
		}
		if math.Abs(DualObjective(dsol)-psol.Objective) > 1e-6 {
			t.Fatalf("trial %d: dual %f != primal %f", trial, DualObjective(dsol), psol.Objective)
		}
		solved++
	}
	if solved < 50 {
		t.Fatalf("only %d/120 duality pairs solved; generator too degenerate", solved)
	}
}

// TestWeakDualityEverywhere: any feasible dual point's objective is at most
// any feasible primal point's.
func TestWeakDualityEverywhere(t *testing.T) {
	p := &Problem{C: []float64{2, 3}}
	p.AddConstraint([]float64{1, 1}, GE, 4)
	p.AddConstraint([]float64{1, 3}, GE, 6)
	d := Dual(p)
	dsol, err := d.Solve()
	if err != nil {
		t.Fatal(err)
	}
	primalPoints := [][]float64{{4, 1}, {0, 4}, {3, 1}, {6, 6}}
	for _, x := range primalPoints {
		if err := p.FeasibleAt(x, 1e-9); err != nil {
			t.Fatalf("test point infeasible: %v", err)
		}
		if DualObjective(dsol) > p.Objective(x)+1e-9 {
			t.Errorf("weak duality violated: dual %f > primal %f at %v",
				DualObjective(dsol), p.Objective(x), x)
		}
	}
}

func TestCalibrationLPRejects(t *testing.T) {
	in := core.MustInstance(1, 3, []int64{5}, []int64{1})
	if _, err := NewCalibrationLP(in, 5, 5); err == nil {
		t.Error("accepted horizon not covering releases")
	}
	if _, err := NewCalibrationLP(in, -1, 20); err == nil {
		t.Error("accepted negative G")
	}
}

func TestScheduleEmbedsFeasiblyWithExactObjective(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 34))
	for trial := 0; trial < 40; trial++ {
		p := 1 + rng.IntN(2)
		n := 1 + rng.IntN(4)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(6))
			weights[i] = 1
		}
		in := core.MustInstance(p, int64(1+rng.IntN(3)), releases, weights).Canonicalize()
		g := int64(rng.IntN(6))

		res, err := online.Alg3(in, g)
		if err != nil {
			t.Fatal(err)
		}
		sched := res.Schedule

		horizon := sched.Makespan() + 1
		if dh := DefaultHorizon(in, g); dh > horizon {
			horizon = dh
		}
		clp, err := NewCalibrationLP(in, g, horizon)
		if err != nil {
			t.Fatal(err)
		}
		x, err := clp.Embed(sched)
		if err != nil {
			t.Fatal(err)
		}
		if err := clp.Problem.FeasibleAt(x, 1e-7); err != nil {
			t.Fatalf("trial %d: schedule embedding infeasible: %v", trial, err)
		}
		if got, want := clp.Problem.Objective(x), float64(core.TotalCost(in, sched, g)); math.Abs(got-want) > 1e-7 {
			t.Fatalf("trial %d: embedded objective %f != schedule cost %f", trial, got, want)
		}
	}
}

func TestLPLowerBoundsBruteOptimum(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 89))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(3)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(5))
			weights[i] = 1
		}
		in := core.MustInstance(1, int64(1+rng.IntN(3)), releases, weights).Canonicalize()
		g := int64(rng.IntN(5))

		optTotal, _, err := offline.BruteForceTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		clp, err := NewCalibrationLP(in, g, DefaultHorizon(in, g))
		if err != nil {
			t.Fatal(err)
		}
		lb, err := clp.LowerBound()
		if err != nil {
			t.Fatal(err)
		}
		if lb > float64(optTotal)+1e-4 {
			t.Fatalf("trial %d: LP lower bound %f exceeds OPT %d (T=%d G=%d jobs %v)",
				trial, lb, optTotal, in.T, g, in.Jobs)
		}
		if lb < 0 {
			t.Fatalf("trial %d: negative lower bound %f", trial, lb)
		}
	}
}

func TestLPLowerBoundMultiMachine(t *testing.T) {
	// Two machines, jobs best served by one calibration each or shared —
	// the LP bound must sit below a known-good schedule's cost.
	in := core.MustInstance(2, 3, []int64{0, 0, 1, 4}, []int64{1, 1, 1, 1}).Canonicalize()
	g := int64(3)
	res, err := online.Alg3(in, g)
	if err != nil {
		t.Fatal(err)
	}
	algCost := core.TotalCost(in, res.Schedule, g)
	horizon := res.Schedule.Makespan() + 1
	if dh := DefaultHorizon(in, g); dh > horizon {
		horizon = dh
	}
	clp, err := NewCalibrationLP(in, g, horizon)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := clp.LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if float64(algCost) < lb-1e-4 {
		t.Fatalf("algorithm cost %d below LP lower bound %f", algCost, lb)
	}
	if lb <= 0 {
		t.Fatalf("vacuous lower bound %f", lb)
	}
}

// TestWeightedLPLowerBoundsBruteOptimum: the weighted objective keeps the
// LP a valid relaxation.
func TestWeightedLPLowerBoundsBruteOptimum(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 17))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.IntN(3)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(5))
			weights[i] = 1 + int64(rng.IntN(4))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(3)), releases, weights).Canonicalize()
		g := int64(rng.IntN(5))
		optTotal, optSched, err := offline.BruteForceTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		clp, err := NewCalibrationLP(in, g, DefaultHorizon(in, g))
		if err != nil {
			t.Fatal(err)
		}
		lb, err := clp.LowerBound()
		if err != nil {
			t.Fatal(err)
		}
		if lb > float64(optTotal)+1e-4 {
			t.Fatalf("trial %d: weighted LP bound %f exceeds OPT %d (T=%d G=%d jobs %v)",
				trial, lb, optTotal, in.T, g, in.Jobs)
		}
		// The optimal schedule must embed with objective equal to its cost.
		if optSched.Makespan() < DefaultHorizon(in, g) {
			x, err := clp.Embed(optSched)
			if err != nil {
				t.Fatal(err)
			}
			if err := clp.Problem.FeasibleAt(x, 1e-7); err != nil {
				t.Fatalf("trial %d: OPT embedding infeasible: %v", trial, err)
			}
			if got, want := clp.Problem.Objective(x), float64(optTotal); math.Abs(got-want) > 1e-7 {
				t.Fatalf("trial %d: embedded objective %f != OPT %f", trial, got, want)
			}
		}
	}
}

func TestBaselineCostsRespectLPBound(t *testing.T) {
	in := core.MustInstance(1, 4, []int64{0, 2, 9}, []int64{1, 1, 1})
	g := int64(4)
	clp, err := NewCalibrationLP(in, g, DefaultHorizon(in, g)+20)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := clp.LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	s, err := baseline.Immediate(in, g)
	if err != nil {
		t.Fatal(err)
	}
	if float64(core.TotalCost(in, s, g)) < lb-1e-4 {
		t.Fatal("baseline cost below LP lower bound")
	}
}

// TestParallelSolveMatchesSerial: the parallel pivot is bit-identical to
// the serial one on a large calibration LP.
func TestParallelSolveMatchesSerial(t *testing.T) {
	in := core.MustInstance(2, 3, []int64{0, 2, 3, 5, 8, 9, 11}, []int64{1, 1, 1, 1, 1, 1, 1})
	clp, err := NewCalibrationLP(in, 5, DefaultHorizon(in, 5))
	if err != nil {
		t.Fatal(err)
	}
	serial := *clp.Problem
	serial.Workers = 1
	ssol, err := serial.Solve()
	if err != nil {
		t.Fatal(err)
	}
	par := *clp.Problem
	par.Workers = 4
	psol, err := par.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ssol.Status != Optimal || psol.Status != Optimal {
		t.Fatalf("statuses %v / %v", ssol.Status, psol.Status)
	}
	if ssol.Objective != psol.Objective {
		t.Fatalf("parallel objective %v != serial %v", psol.Objective, ssol.Objective)
	}
	for j := range ssol.X {
		if ssol.X[j] != psol.X[j] {
			t.Fatalf("x[%d] differs: %v vs %v", j, ssol.X[j], psol.X[j])
		}
	}
}

func BenchmarkCalibrationLPSolveSerial(b *testing.B) {
	in := core.MustInstance(3, 3, []int64{0, 2, 3, 5, 8, 9, 11, 14}, []int64{1, 1, 1, 1, 1, 1, 1, 1})
	for i := 0; i < b.N; i++ {
		clp, err := NewCalibrationLP(in, 6, DefaultHorizon(in, 6))
		if err != nil {
			b.Fatal(err)
		}
		clp.Problem.Workers = 1
		if _, err := clp.Problem.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCalibrationLPSolveParallel(b *testing.B) {
	in := core.MustInstance(3, 3, []int64{0, 2, 3, 5, 8, 9, 11, 14}, []int64{1, 1, 1, 1, 1, 1, 1, 1})
	for i := 0; i < b.N; i++ {
		clp, err := NewCalibrationLP(in, 6, DefaultHorizon(in, 6))
		if err != nil {
			b.Fatal(err)
		}
		clp.Problem.Workers = 0 // GOMAXPROCS
		if _, err := clp.Problem.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
