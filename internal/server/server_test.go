package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer boots a Server on an httptest listener and tears it down
// with the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

// doJSON issues a request with a JSON body and decodes the JSON response,
// returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	status, _ := doJSONHeaders(t, method, url, body, out)
	return status
}

func doJSONHeaders(t *testing.T, method, url string, body, out any) (int, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// mustCreate creates a session and returns its ID.
func mustCreate(t *testing.T, base string, req CreateSessionRequest) string {
	t.Helper()
	var info SessionInfo
	if status := doJSON(t, "POST", base+"/v1/sessions", req, &info); status != 201 {
		t.Fatalf("create session: status %d", status)
	}
	if info.ID == "" {
		t.Fatal("create session: empty ID")
	}
	return info.ID
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 10, G: 20, Alg: "alg2"})

	var ar ArrivalsResponse
	status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/arrivals", ArrivalsRequest{
		Jobs: []JobSpec{{Release: 0, Weight: 3}, {Release: 2, Weight: 1}, {Release: 7, Weight: 5}},
	}, &ar)
	if status != 200 || ar.Accepted != 3 || ar.Buffered != 3 {
		t.Fatalf("arrivals: status %d resp %+v", status, ar)
	}
	if len(ar.IDs) != 3 || ar.IDs[0] != 0 || ar.IDs[2] != 2 {
		t.Fatalf("IDs = %v, want dense from 0", ar.IDs)
	}

	var sr StepResponse
	status = doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 40}, &sr)
	if status != 200 {
		t.Fatalf("step: status %d", status)
	}
	if sr.Now != 40 || sr.Stepped != 40 {
		t.Fatalf("step: %+v", sr)
	}
	if !sr.Done {
		t.Fatalf("session not done after 40 steps: %+v", sr)
	}
	if len(sr.Events) == 0 {
		t.Fatal("no events reported")
	}

	var sched ScheduleResponse
	status = doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/schedule", nil, &sched)
	if status != 200 {
		t.Fatalf("schedule: status %d", status)
	}
	if !sched.Done || sched.Assigned != 3 || len(sched.Assignments) != 3 {
		t.Fatalf("schedule: %+v", sched)
	}
	if len(sched.Calibrations) == 0 || sched.Calibrations[0].Trigger == "" {
		t.Fatalf("calibrations missing triggers: %+v", sched.Calibrations)
	}
	if sched.TotalCost != sched.Flow+20*int64(len(sched.Calibrations)) {
		t.Fatalf("cost identity violated: %+v", sched)
	}

	var info SessionInfo
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &info); status != 200 {
		t.Fatalf("info: status %d", status)
	}
	if info.Jobs != 3 || info.Now != 40 {
		t.Fatalf("info: %+v", info)
	}

	if status := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); status != 204 {
		t.Fatalf("delete: status %d", status)
	}
	var er ErrorResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &er); status != 404 {
		t.Fatalf("deleted session still answers: status %d", status)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := testServer(t, Config{MaxStepBatch: 100})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 10, Alg: "alg1"})

	step2 := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 10, Alg: "alg1"})
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+step2+"/step", StepRequest{Steps: 3}, nil)

	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   any
		status int
		msg    string
	}{
		{"unknown alg", "POST", "/v1/sessions", CreateSessionRequest{T: 5, G: 1, Alg: "dp"}, 400, "unknown engine"},
		{"bad T", "POST", "/v1/sessions", CreateSessionRequest{T: 0, G: 1, Alg: "alg1"}, 400, "calibration length"},
		{"bad G", "POST", "/v1/sessions", CreateSessionRequest{T: 5, G: -3, Alg: "alg1"}, 400, "calibration cost"},
		{"unknown session", "GET", "/v1/sessions/s-999999", nil, 404, "no session"},
		{"unknown session step", "POST", "/v1/sessions/s-999999/step", StepRequest{Steps: 1}, 404, "no session"},
		{"empty arrivals", "POST", "/v1/sessions/" + id + "/arrivals", ArrivalsRequest{}, 400, "no jobs"},
		{"zero weight", "POST", "/v1/sessions/" + id + "/arrivals",
			ArrivalsRequest{Jobs: []JobSpec{{Release: 0, Weight: 0}}}, 400, "weight"},
		{"weighted on alg1", "POST", "/v1/sessions/" + id + "/arrivals",
			ArrivalsRequest{Jobs: []JobSpec{{Release: 0, Weight: 2}}}, 400, "unweighted"},
		{"time travel", "POST", "/v1/sessions/" + step2 + "/arrivals",
			ArrivalsRequest{Jobs: []JobSpec{{Release: 0, Weight: 1}}}, 409, "time-travel"},
		{"negative steps", "POST", "/v1/sessions/" + id + "/step", StepRequest{Steps: -4}, 400, "want >= 1"},
		{"oversized steps", "POST", "/v1/sessions/" + id + "/step", StepRequest{Steps: 101}, 400, "per-request limit"},
		{"malformed body", "POST", "/v1/sessions", "not an object", 400, "malformed"},
		{"unknown field", "POST", "/v1/sessions", map[string]any{"t": 5, "g": 1, "alg": "alg1", "bogus": 1}, 400, "malformed"},
	} {
		var er ErrorResponse
		status := doJSON(t, tc.method, ts.URL+tc.path, tc.body, &er)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, status, tc.status, er)
			continue
		}
		if !strings.Contains(er.Error, tc.msg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, er.Error, tc.msg)
		}
	}
}

func TestArrivalBackpressure(t *testing.T) {
	_, ts := testServer(t, Config{MaxBuffer: 4})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 10, Alg: "alg2"})
	url := ts.URL + "/v1/sessions/" + id + "/arrivals"

	jobs := make([]JobSpec, 4)
	for i := range jobs {
		jobs[i] = JobSpec{Release: int64(i), Weight: 1}
	}
	var ar ArrivalsResponse
	if status := doJSON(t, "POST", url, ArrivalsRequest{Jobs: jobs}, &ar); status != 200 {
		t.Fatalf("fill: status %d", status)
	}
	if ar.Buffered != 4 || ar.Capacity != 4 {
		t.Fatalf("fill: %+v", ar)
	}

	var er ErrorResponse
	status, hdr := doJSONHeaders(t, "POST", url, ArrivalsRequest{
		Jobs: []JobSpec{{Release: 9, Weight: 1}},
	}, &er)
	if status != 429 {
		t.Fatalf("over-fill: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if !strings.Contains(er.Error, "buffer full") {
		t.Errorf("unhelpful backpressure message: %q", er.Error)
	}

	// The batch is atomic: a batch that would only partially fit is
	// wholly refused, and the buffer is unchanged.
	var info SessionInfo
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &info)
	if info.Buffered != 4 || info.Jobs != 4 {
		t.Fatalf("buffer changed by refused batch: %+v", info)
	}

	// Stepping drains the buffer and clears the backpressure.
	doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 9}, nil)
	if status := doJSON(t, "POST", url, ArrivalsRequest{Jobs: []JobSpec{{Release: 9, Weight: 1}}}, &ar); status != 200 {
		t.Fatalf("post-drain arrival: status %d", status)
	}
}

func TestSessionLimit(t *testing.T) {
	_, ts := testServer(t, Config{MaxSessions: 2})
	mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 1, Alg: "alg1"})
	id2 := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 1, Alg: "alg1"})

	var er ErrorResponse
	status, hdr := doJSONHeaders(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{T: 5, G: 1, Alg: "alg1"}, &er)
	if status != 429 || hdr.Get("Retry-After") == "" {
		t.Fatalf("third create: status %d retry-after %q", status, hdr.Get("Retry-After"))
	}
	// Deleting frees a slot.
	if status := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id2, nil, nil); status != 204 {
		t.Fatalf("delete: %d", status)
	}
	mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 1, Alg: "alg1"})
}

func TestIdleEviction(t *testing.T) {
	srv, ts := testServer(t, Config{IdleTTL: 50 * time.Millisecond, JanitorInterval: 10 * time.Millisecond})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 1, Alg: "alg1"})
	// Poll the manager, not the session: a GET on the session would
	// itself count as activity and refresh the TTL.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Manager().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session was never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var er ErrorResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &er); status != 404 {
		t.Fatalf("evicted session still answers: status %d", status)
	}
}

func TestActiveSessionSurvivesTTL(t *testing.T) {
	_, ts := testServer(t, Config{IdleTTL: 500 * time.Millisecond, JanitorInterval: 20 * time.Millisecond})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 1, Alg: "alg1"})
	// Keep touching the session for several TTLs; it must stay alive.
	for i := 0; i < 8; i++ {
		var sr StepResponse
		if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 1}, &sr); status != 200 {
			t.Fatalf("touch %d: status %d", i, status)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestShutdownDrainsAndRefuses(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Manager().Create(CreateSessionRequest{T: 5, G: 1, Alg: "alg1"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	_, err = srv.Manager().Create(CreateSessionRequest{T: 5, G: 1, Alg: "alg1"})
	ae, ok := err.(*apiError)
	if !ok || ae.status != 503 {
		t.Fatalf("create after shutdown: %v", err)
	}
}

// TestConcurrentSessions hammers one shared session and many private
// ones from parallel goroutines; run under -race this is the data-race
// gate for the worker model. The shared session's clock must equal the
// total number of steps issued.
func TestConcurrentSessions(t *testing.T) {
	_, ts := testServer(t, Config{})
	shared := mustCreate(t, ts.URL, CreateSessionRequest{T: 8, G: 16, Alg: "alg2"})

	const workers = 8
	const stepsEach = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Private session: full lifecycle.
			var info SessionInfo
			if status := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{T: 6, G: 12, Alg: "alg2"}, &info); status != 201 {
				errs <- fmt.Errorf("worker %d: create status %d", w, status)
				return
			}
			priv := ts.URL + "/v1/sessions/" + info.ID
			if status := doJSON(t, "POST", priv+"/arrivals", ArrivalsRequest{
				Jobs: []JobSpec{{Release: 0, Weight: int64(w + 1)}, {Release: 3, Weight: 1}},
			}, nil); status != 200 {
				errs <- fmt.Errorf("worker %d: arrivals status %d", w, status)
				return
			}
			for i := 0; i < stepsEach; i++ {
				if status := doJSON(t, "POST", priv+"/step", StepRequest{Steps: 1}, nil); status != 200 {
					errs <- fmt.Errorf("worker %d: private step status %d", w, status)
					return
				}
				if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+shared+"/step", StepRequest{Steps: 1}, nil); status != 200 {
					errs <- fmt.Errorf("worker %d: shared step status %d", w, status)
					return
				}
				if i%5 == 0 {
					doJSON(t, "GET", ts.URL+"/v1/sessions/"+shared+"/schedule", nil, &ScheduleResponse{})
				}
			}
			doJSON(t, "DELETE", priv, nil, nil)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var info SessionInfo
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+shared, nil, &info)
	if info.Now != workers*stepsEach {
		t.Fatalf("shared clock = %d, want %d", info.Now, workers*stepsEach)
	}
}

func TestHealthAndVars(t *testing.T) {
	_, ts := testServer(t, Config{})
	mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 1, Alg: "alg1"})

	var h HealthResponse
	if status := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); status != 200 {
		t.Fatalf("healthz: status %d", status)
	}
	if h.Status != "ok" || h.Sessions < 1 {
		t.Fatalf("healthz: %+v", h)
	}

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, key := range []string{
		"calibserved.sessions.active",
		"calibserved.sessions.created",
		"calibserved.sessions.evicted",
		"calibserved.steps.served",
		"calibserved.arrivals.accepted",
		"calibserved.arrivals.rejected",
		"calibserved.queue.depth",
		"calibserved.step.latency",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
}
