package server

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/server/metrics"
	"calibsched/internal/store"
	"calibsched/internal/trace"
)

// persister is a session's write-ahead persistence hook. It is owned by
// the same goroutine that owns the engine — the session worker while the
// session is live, the manager during boot replay and after the worker
// has drained — so it needs no locks and adds nothing to the hot path
// beyond the append itself. Sessions without a store run with a nil
// persister and skip every call behind a single pointer check.
type persister struct {
	log    *store.Log
	every  int // snapshot cadence, in records appended since the last one
	since  int
	logger *slog.Logger
	id     string

	// Fsync attribution for traced appends. timing is armed only between
	// begin and end on the owning goroutine; the log's sync observer adds
	// into syncWait while armed and is a no-op otherwise (snapshot-path
	// syncs outside an append stay unattributed). Under group commit the
	// observer reports the whole commit wait (write + shared fsync) as
	// fsync time, since the wait is fsync-dominated.
	timing   bool
	syncWait time.Duration

	// jobs is the arrivals-encoding scratch reused across appends so a
	// steady-state arrivals batch allocates only its JSON. Owned by the
	// same goroutine as the log; the append marshals it before returning.
	jobs []store.JobRec
}

// newPersister attaches a persister to its log and installs the fsync
// observer that lets traced appends split wal-append from fsync-wait.
func newPersister(log *store.Log, every, since int, logger *slog.Logger, id string) *persister {
	p := &persister{log: log, every: every, since: since, logger: logger, id: id}
	log.SetSyncObserver(p.noteSync)
	return p
}

func (p *persister) noteSync(d time.Duration) {
	if p.timing {
		p.syncWait += d
	}
}

// begin arms fsync attribution for one traced append; untraced appends
// (act == nil) never read the clock.
func (p *persister) begin(act *trace.Active) time.Time {
	if act == nil {
		return time.Time{}
	}
	p.timing = true
	p.syncWait = 0
	return time.Now()
}

// end records the append as a wal-append phase (fsync time excluded) and
// the fsync portion, when any ran, as a fsync-wait phase laid end-to-end
// after it.
func (p *persister) end(act *trace.Active, start time.Time) {
	if act == nil {
		return
	}
	p.timing = false
	total := time.Since(start)
	wal := total - p.syncWait
	if wal < 0 {
		wal = 0
	}
	act.Phase(trace.PhaseWALAppend, start, wal)
	if p.syncWait > 0 {
		act.Phase(trace.PhaseFsyncWait, start.Add(wal), p.syncWait)
	}
}

// appendArrivals logs one accepted arrivals batch before it is applied.
// baseID is the ID the first job of the batch will be assigned; recovery
// asserts replay reassigns the same IDs.
func (p *persister) appendArrivals(specs []JobSpec, baseID int, act *trace.Active) error {
	p.jobs = p.jobs[:0]
	for i, js := range specs {
		p.jobs = append(p.jobs, store.JobRec{ID: baseID + i, Release: js.Release, Weight: js.Weight})
	}
	cmd := store.ArrivalsCommand{Jobs: p.jobs}
	start := p.begin(act)
	n, err := p.log.AppendArrivals(cmd)
	p.end(act, start)
	if err != nil {
		return err
	}
	p.appended(n)
	return nil
}

// appendSteps logs one step command before the engine advances.
func (p *persister) appendSteps(k int64, act *trace.Active) error {
	start := p.begin(act)
	n, err := p.log.AppendSteps(store.StepsCommand{K: k})
	p.end(act, start)
	if err != nil {
		return err
	}
	p.appended(n)
	return nil
}

func (p *persister) appended(n int) {
	metrics.WALAppends.Add(1)
	metrics.WALBytes.Add(int64(n))
	p.since++
}

// maybeSnapshot writes a snapshot when the cadence is due. Called by the
// worker after a command has been appended and applied.
func (p *persister) maybeSnapshot(s *session) {
	if p.since >= p.every {
		p.snapshot(s)
	}
}

// snapshot persists the session's current state and truncates the WAL
// behind it. Best-effort: on failure the WAL still holds the full
// history, so the error is logged and the session keeps serving.
func (p *persister) snapshot(s *session) {
	snap, err := s.buildSnapshot()
	if err != nil {
		if !errors.Is(err, errNoSnapshot) {
			p.logger.Warn("snapshot skipped; wal retained", "session", p.id, "err", err)
		}
		// Engines without snapshot support recover by full-log replay;
		// their WALs are never truncated.
		return
	}
	if err := p.log.WriteSnapshot(snap); err != nil {
		p.logger.Warn("snapshot failed; wal retained", "session", p.id, "err", err)
		return
	}
	p.since = 0
	metrics.SnapshotsWritten.Add(1)
}

// settle finalizes a gracefully retiring session's on-disk state: a last
// snapshot (so the next boot replays nothing) and a clean close. Broken
// sessions skip the snapshot — a recovered panic may have interrupted
// the engine mid-mutation, and replaying the intact WAL reproduces the
// breakage deterministically instead of persisting the wreckage. Called
// by the manager after the worker has drained (<-s.done), which orders
// this read of worker-owned state after every worker write.
func (p *persister) settle(s *session) {
	if s.broken == nil {
		p.snapshot(s)
	}
	if err := p.log.Close(); err != nil {
		p.logger.Warn("closing wal", "session", p.id, "err", err)
	}
}

// errNoSnapshot marks an engine that does not implement
// online.Snapshotter; such sessions persist via full-log replay only.
var errNoSnapshot = errors.New("engine does not support snapshots")

// buildSnapshot captures the session's durable state: the engine's own
// encoding plus the accepted-job table and the IDs still sitting in the
// arrival buffer. Worker-owned (or post-drain manager-owned) state only.
func (s *session) buildSnapshot() (*store.Snapshot, error) {
	snapper, ok := s.eng.(online.Snapshotter)
	if !ok {
		return nil, errNoSnapshot
	}
	state, err := snapper.MarshalState()
	if err != nil {
		return nil, err
	}
	snap := &store.Snapshot{
		Create: store.CreateCommand{Alg: s.spec.Name, T: s.t, G: s.g},
		Engine: state,
		Jobs:   make([]store.JobRec, len(s.jobs)),
	}
	for i, j := range s.jobs {
		snap.Jobs[i] = store.JobRec{ID: j.ID, Release: j.Release, Weight: j.Weight}
	}
	if n := s.buffer.Len(); n > 0 {
		ids := make([]int, 0, n)
		for _, j := range s.buffer.Items() {
			ids = append(ids, j.ID)
		}
		sort.Ints(ids)
		snap.Buffered = ids
	}
	return snap, nil
}

// loadSnapshot restores worker-owned state from a recovered snapshot.
// The buffer is rebuilt by pushing jobs in ascending ID order, which the
// queue's total order (release, then ID) maps to the exact pop sequence
// of the original run.
func (s *session) loadSnapshot(snap *store.Snapshot) error {
	if len(snap.Engine) == 0 {
		return fmt.Errorf("snapshot carries no engine state")
	}
	eng, err := online.RestoreEngine(s.spec.Name, s.t, s.g, snap.Engine, online.WithSink(s.ring))
	if err != nil {
		return err
	}
	s.eng = eng
	s.skipper, _ = eng.(online.IdleSkipper)
	s.jobs = make([]core.Job, len(snap.Jobs))
	for i, j := range snap.Jobs {
		s.jobs[i] = core.Job{ID: j.ID, Release: j.Release, Weight: j.Weight}
	}
	for _, id := range snap.Buffered {
		s.buffer.Push(s.jobs[id])
	}
	metrics.QueueDepth.Add(int64(len(snap.Buffered)))
	s.depth.Add(int64(len(snap.Buffered)))
	return nil
}

// apply replays one logged command against worker-owned state during
// boot recovery (s.replaying is set, so nothing is re-appended or
// re-counted). The command was validated and accepted in its first life;
// any rejection now is divergence, except a panic-derived broken state,
// which rebuild accepts when it lands on the final command.
func (s *session) apply(cmd store.Command) error {
	switch cmd.Type {
	case store.RecordArrivals:
		base := len(s.jobs)
		specs := make([]JobSpec, len(cmd.Arrivals.Jobs))
		for i, j := range cmd.Arrivals.Jobs {
			if j.ID != base+i {
				return fmt.Errorf("logged job ID %d where replay assigns %d", j.ID, base+i)
			}
			specs[i] = JobSpec{Release: j.Release, Weight: j.Weight}
		}
		return s.guard("replayed arrivals", func() error {
			_, err := s.admit(specs, nil)
			return err
		})
	case store.RecordSteps:
		// The logged k was within the batch limit when accepted; pass it
		// as the limit so a later config change cannot fail replay.
		return s.guard("replayed steps", func() error {
			_, err := s.advance(cmd.Steps.K, cmd.Steps.K, nil)
			return err
		})
	default:
		return fmt.Errorf("unexpected record type %d in command stream", cmd.Type)
	}
}

// recoverSessions rebuilds every recoverable on-disk session before the
// manager accepts traffic. Runs from NewManager, before any concurrent
// access. Unrecoverable directories are logged, counted, and left on
// disk for inspection; their IDs still advance the session numbering so
// new sessions never collide with them.
func (m *Manager) recoverSessions() error {
	ids, err := m.cfg.Store.SessionIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		var n int64
		if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil && n > m.nextID {
			m.nextID = n
		}
	}
	rec, err := m.cfg.Store.Recover()
	if err != nil {
		return err
	}
	for _, f := range rec.Failed {
		m.cfg.Logger.Warn("session unrecoverable; directory kept for inspection",
			"session", f.ID, "err", f.Err)
		metrics.RecoveryFailed.Add(1)
	}
	now := time.Now()
	for i := range rec.Sessions {
		rs := &rec.Sessions[i]
		s, err := m.rebuild(rs, now)
		if err != nil {
			m.cfg.Logger.Warn("session replay failed; directory kept for inspection",
				"session", rs.ID, "err", err)
			if cErr := rs.Log.Close(); cErr != nil {
				m.cfg.Logger.Warn("closing wal of unreplayable session", "session", rs.ID, "err", cErr)
			}
			metrics.RecoveryFailed.Add(1)
			continue
		}
		m.sessions[rs.ID] = s
		metrics.SessionsActive.Add(1)
		metrics.RecoveredSessions.Add(1)
		metrics.RecoveredRecords.Add(int64(len(rs.Commands)))
		if rs.Truncated {
			metrics.RecoveryTruncations.Add(1)
		}
	}
	return nil
}

// rebuild reconstructs one session from its recovered log — snapshot
// state, then the replayed command stream — and starts its worker. The
// worker starts only after the state matches the log, so no request can
// observe a half-replayed session.
func (m *Manager) rebuild(rs *store.RecoveredSession, now time.Time) (*session, error) {
	s, err := m.restoreSession(rs, now)
	if err != nil {
		return nil, err
	}
	// Replayed records mean the snapshot is that stale: carry the count
	// into the cadence so a long log earns a fresh snapshot on the next
	// append instead of replaying again after the next crash.
	s.per = newPersister(rs.Log, m.cfg.SnapshotEvery, len(rs.Commands), m.cfg.Logger, rs.ID)
	go s.work()
	return s, nil
}

// restoreSession replays recovered (or migrated — the import path rides
// the same replay) state into a workerless session: snapshot first, then
// the command stream in order against the deterministic engine. The
// returned session has no persister and no running worker; the caller
// attaches both once it decides the session is worth serving. On error
// the session's queue-depth contribution is released, so a failed replay
// leaves no stale gauge behind.
func (m *Manager) restoreSession(rs *store.RecoveredSession, now time.Time) (*session, error) {
	spec, ok := online.LookupEngine(rs.Create.Alg)
	if !ok {
		return nil, fmt.Errorf("create record names unknown engine %q", rs.Create.Alg)
	}
	if _, err := online.NewEngine(rs.Create.Alg, rs.Create.T, rs.Create.G); err != nil {
		return nil, err
	}
	s := makeSession(rs.ID, spec, rs.Create.T, rs.Create.G, m.cfg.MaxBuffer, m.cfg.TraceRing, nil, now)
	s.replaying = true
	if rs.Snap != nil {
		if err := s.loadSnapshot(rs.Snap); err != nil {
			return nil, err
		}
	}
	for i, cmd := range rs.Commands {
		err := s.apply(cmd)
		if err == nil {
			continue
		}
		if s.broken != nil && i == len(rs.Commands)-1 {
			// The live run panicked on its last logged command; replay
			// reproduced it. The session recovers in its broken state.
			break
		}
		metrics.QueueDepth.Add(-s.depth.Swap(0))
		return nil, fmt.Errorf("replaying record %d (seq %d): %w", i, cmd.Seq, err)
	}
	s.replaying = false
	return s, nil
}
