package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"calibsched/internal/server/metrics"
	"calibsched/internal/store"
)

// hardKill simulates kill -9 at the session layer: every worker stops
// where it is and its log is closed without sync, settle, or final
// snapshot — recovery sees exactly the bytes the OS had. Writes go
// through unbuffered os.File, so for an in-process kill nothing is lost
// regardless of fsync policy; the policies differ only under machine
// crash.
func hardKill(m *Manager) {
	m.mu.Lock()
	ss := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.sessions = make(map[string]*session)
	m.closed = true
	m.mu.Unlock()
	for _, s := range ss {
		s.halt()
		<-s.done
		if s.per != nil {
			s.per.log.Abort()
		}
		// Keep the process-global gauges sane for the other tests.
		metrics.QueueDepth.Add(-s.depth.Swap(0))
		metrics.SessionsActive.Add(-1)
	}
}

// scriptOp is one scripted command, applied identically to the
// store-backed manager and the in-memory reference.
type scriptOp struct {
	sess  int
	jobs  []JobSpec // arrivals when non-nil
	steps int64     // step count otherwise
}

// scriptSession is one session's construction request in the script.
type scriptSession struct {
	req CreateSessionRequest
}

// buildScript generates a deterministic multi-session traffic script:
// arrival batches with releases valid for the session clock at the point
// they are issued, interleaved with step batches.
func buildScript(rng *rand.Rand, numOps int) ([]scriptSession, []scriptOp) {
	sessions := []scriptSession{
		{req: CreateSessionRequest{Alg: "alg1", T: 5, G: 7}},
		{req: CreateSessionRequest{Alg: "alg2", T: 8, G: 20}},
		{req: CreateSessionRequest{Alg: "alg2", T: 3, G: 0}},
	}
	clock := make([]int64, len(sessions))
	var ops []scriptOp
	for len(ops) < numOps {
		si := rng.IntN(len(sessions))
		if rng.IntN(2) == 0 {
			n := 1 + rng.IntN(3)
			jobs := make([]JobSpec, n)
			for j := range jobs {
				w := int64(1)
				if sessions[si].req.Alg == "alg2" {
					w = 1 + int64(rng.IntN(9))
				}
				jobs[j] = JobSpec{Release: clock[si] + int64(rng.IntN(20)), Weight: w}
			}
			ops = append(ops, scriptOp{sess: si, jobs: jobs})
		} else {
			k := 1 + int64(rng.IntN(12))
			ops = append(ops, scriptOp{sess: si, steps: k})
			clock[si] += k
		}
	}
	return sessions, ops
}

// applyOp drives one scripted command against a manager.
func applyOp(t *testing.T, m *Manager, ids []string, o scriptOp) {
	t.Helper()
	s, err := m.Get(ids[o.sess])
	if err != nil {
		t.Fatalf("get %s: %v", ids[o.sess], err)
	}
	if o.jobs != nil {
		if _, err := s.Arrivals(o.jobs, nil); err != nil {
			t.Fatalf("arrivals on %s: %v", ids[o.sess], err)
		}
	} else {
		if _, err := s.Step(o.steps, 100_000, nil); err != nil {
			t.Fatalf("step on %s: %v", ids[o.sess], err)
		}
	}
}

// scheduleJSON reduces a session to its canonical byte representation.
func scheduleJSON(t *testing.T, m *Manager, id string) string {
	t.Helper()
	s, err := m.Get(id)
	if err != nil {
		t.Fatalf("get %s: %v", id, err)
	}
	resp, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot %s: %v", id, err)
	}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCrashRecoveryDifferential is the acceptance gate for calibstore:
// a store-backed manager is hard-killed at a random point in a random
// multi-session traffic script and recovered into a fresh manager, which
// finishes the script; an in-memory reference manager runs the whole
// script uninterrupted. The recovered schedules — assignments,
// calibrations, triggers, flow, and total cost — must be byte-identical
// JSON to the reference for every session, across fsync policies and
// snapshot cadences (including cadence 1, all-snapshot, and a cadence
// that never snapshots).
func TestCrashRecoveryDifferential(t *testing.T) {
	configs := []store.Options{
		{Fsync: store.FsyncNone},
		{Fsync: store.FsyncBatch, BatchEvery: 7},
		{Fsync: store.FsyncAlways},
		{Fsync: store.FsyncAlways, GroupCommit: true},
	}
	cadences := []int{1, 3, 5, 1 << 30}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewPCG(77, uint64(trial)))
		sessions, ops := buildScript(rng, 60)
		killAt := rng.IntN(len(ops) + 1)
		cadence := cadences[trial%len(cadences)]
		opts := configs[trial%len(configs)]

		st, err := store.Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Store: st, SnapshotEvery: cadence}
		a, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewManager(Config{})
		if err != nil {
			t.Fatal(err)
		}

		ids := make([]string, len(sessions))
		for i, ss := range sessions {
			infoA, err := a.Create(ss.req)
			if err != nil {
				t.Fatal(err)
			}
			infoR, err := ref.Create(ss.req)
			if err != nil {
				t.Fatal(err)
			}
			if infoA.ID != infoR.ID {
				t.Fatalf("trial %d: id mismatch %s vs %s", trial, infoA.ID, infoR.ID)
			}
			ids[i] = infoA.ID
		}

		for _, o := range ops[:killAt] {
			applyOp(t, a, ids, o)
			applyOp(t, ref, ids, o)
		}

		hardKill(a)
		b, err := NewManager(cfg)
		if err != nil {
			t.Fatalf("trial %d: recovery boot: %v", trial, err)
		}
		if b.Len() != len(sessions) {
			t.Fatalf("trial %d (kill at %d/%d): recovered %d of %d sessions",
				trial, killAt, len(ops), b.Len(), len(sessions))
		}

		for _, o := range ops[killAt:] {
			applyOp(t, b, ids, o)
			applyOp(t, ref, ids, o)
		}

		for i, id := range ids {
			got, want := scheduleJSON(t, b, id), scheduleJSON(t, ref, id)
			if got != want {
				t.Fatalf("trial %d (kill at %d/%d, fsync=%s, group=%v, snapshot-every=%d): session %d diverged after recovery\nrecovered: %s\nreference: %s",
					trial, killAt, len(ops), opts.Fsync, opts.GroupCommit, cadence, i, got, want)
			}
		}

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := b.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		if err := ref.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		st.Close()
	}
}

// TestGroupCommitDifferentialConcurrent drives N sessions concurrently —
// their appends interleaving inside shared commit groups — and requires
// every schedule byte-identical to an in-memory reference run of the
// same per-session scripts. Under -race this also proves the committer's
// synchronization with N live session workers.
func TestGroupCommitDifferentialConcurrent(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m, err := NewManager(Config{Store: st, SnapshotEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}

	const numSessions = 6
	type script struct {
		id  string
		ops []scriptOp
	}
	scripts := make([]script, numSessions)
	for i := range scripts {
		req := CreateSessionRequest{Alg: "alg2", T: 4 + int64(i), G: 3 * int64(i)}
		infoA, err := m.Create(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Create(req); err != nil {
			t.Fatal(err)
		}
		// One single-session script per goroutine, so each session's
		// command order is deterministic while the sessions interleave
		// freely inside shared commit groups.
		rng := rand.New(rand.NewPCG(99, uint64(i)))
		var clock int64
		ops := make([]scriptOp, 0, 40)
		for len(ops) < 40 {
			if rng.IntN(2) == 0 {
				jobs := make([]JobSpec, 1+rng.IntN(3))
				for j := range jobs {
					jobs[j] = JobSpec{Release: clock + int64(rng.IntN(20)), Weight: 1 + int64(rng.IntN(9))}
				}
				ops = append(ops, scriptOp{jobs: jobs})
			} else {
				k := 1 + int64(rng.IntN(12))
				ops = append(ops, scriptOp{steps: k})
				clock += k
			}
		}
		scripts[i] = script{id: infoA.ID, ops: ops}
	}

	var wg sync.WaitGroup
	errs := make([]error, numSessions*2)
	for si, sc := range scripts {
		for mi, mgr := range []*Manager{m, ref} {
			wg.Add(1)
			go func(slot int, mgr *Manager, sc script) {
				defer wg.Done()
				s, err := mgr.Get(sc.id)
				if err != nil {
					errs[slot] = err
					return
				}
				for _, o := range sc.ops {
					if o.jobs != nil {
						_, err = s.Arrivals(o.jobs, nil)
					} else {
						_, err = s.Step(o.steps, 100_000, nil)
					}
					if err != nil {
						errs[slot] = err
						return
					}
				}
			}(si*2+mi, mgr, sc)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for i, sc := range scripts {
		got, want := scheduleJSON(t, m, sc.id), scheduleJSON(t, ref, sc.id)
		if got != want {
			t.Fatalf("session %d diverged under concurrent group commit\ngot:  %s\nwant: %s", i, got, want)
		}
	}
	if c := st.Committer(); c.Records() == 0 {
		t.Fatal("no records rode the group committer")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ref.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulShutdownPersistsSessions pins the settle path: shutdown
// writes a final snapshot and closes the log, so the next boot restores
// the session with zero records replayed and the identical schedule.
func TestGracefulShutdownPersistsSessions(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, SnapshotEvery: 1 << 30} // never snapshot mid-run
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(CreateSessionRequest{Alg: "alg2", T: 6, G: 12})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Arrivals([]JobSpec{{Release: 0, Weight: 5}, {Release: 4, Weight: 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(9, 100, nil); err != nil {
		t.Fatal(err)
	}
	want := scheduleJSON(t, m, info.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	replayedBefore := metrics.RecoveredRecords.Value()
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.RecoveredRecords.Value() - replayedBefore; got != 0 {
		t.Fatalf("graceful shutdown left %d records to replay; settle must snapshot", got)
	}
	if got := scheduleJSON(t, m2, info.ID); got != want {
		t.Fatalf("schedule changed across graceful restart\nbefore: %s\nafter:  %s", want, got)
	}
	// The restored session keeps serving.
	s2, err := m2.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Step(5, 100, nil); err != nil {
		t.Fatalf("step after restore: %v", err)
	}
	if err := m2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRemovesSessionDirectory is the orphaned-directory regression
// test: DELETE must retire the on-disk state with the in-memory session,
// and a restart must not resurrect it.
func TestDeleteRemovesSessionDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(CreateSessionRequest{Alg: "alg1", T: 4, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Arrivals([]JobSpec{{Release: 2, Weight: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID)); err != nil {
		t.Fatalf("session dir missing while live: %v", err)
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID)); !os.IsNotExist(err) {
		t.Fatalf("session dir survives DELETE: %v", err)
	}
	m2, err := NewManager(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 0 {
		t.Fatalf("deleted session resurrected: %d live after restart", m2.Len())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestJanitorRetiresDiskState: idle eviction removes the session's
// directory along with the in-memory session.
func TestJanitorRetiresDiskState(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Store: st, IdleTTL: 50 * time.Millisecond, JanitorInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Create(CreateSessionRequest{Alg: "alg1", T: 4, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the idle session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The janitor removes the session from the table before retiring its
	// disk state, so the directory disappears shortly after Len hits 0 —
	// poll rather than stat once.
	for {
		if _, err := os.Stat(filepath.Join(dir, info.ID)); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session dir survives idle eviction")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestNewSessionsSkipOnDiskIDs: after recovery — including directories
// that failed to recover — new session numbering continues past
// everything on disk, so creation can never collide with an existing
// directory.
func TestNewSessionsSkipOnDiskIDs(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Create(CreateSessionRequest{Alg: "alg1", T: 4, G: 3}); err != nil {
			t.Fatal(err)
		}
	}
	hardKill(m)
	// An unrecoverable directory with a higher number must still advance
	// the counter.
	if err := os.Mkdir(filepath.Join(dir, "s-000007"), 0o755); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 {
		t.Fatalf("recovered %d sessions, want 2", m2.Len())
	}
	info, err := m2.Create(CreateSessionRequest{Alg: "alg1", T: 4, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != fmt.Sprintf("s-%06d", 8) {
		t.Fatalf("new session got ID %s, want s-000008 (past the on-disk s-000007)", info.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
