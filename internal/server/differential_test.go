package server

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/workload"
)

// TestServedMatchesBatch is the determinism-across-the-network-boundary
// gate: driving calibserved over HTTP with the arrivals of a random
// instance must produce a schedule and total cost byte-identical (as
// canonical JSON) to the batch Alg1/Alg2 run on the same instance.
//
// Arrivals are fed in instance order, so the server's dense acceptance
// IDs coincide with the instance's job IDs and the comparison is exact,
// not merely cost-equal. Two feeding disciplines are exercised: all jobs
// buffered up front (stressing the maturation heap) and just-in-time
// batches interleaved with steps.
func TestServedMatchesBatch(t *testing.T) {
	_, ts := testServer(t, Config{MaxBuffer: 1 << 14})
	rng := rand.New(rand.NewPCG(2026, 85))

	for trial := 0; trial < 40; trial++ {
		alg := "alg1"
		weights := workload.WeightUnit
		if trial%2 == 1 {
			alg = "alg2"
			weights = workload.WeightZipf
		}
		spec := workload.Spec{
			N: 5 + rng.IntN(40), P: 1, T: int64(2 + rng.IntN(12)),
			Seed:    uint64(1000 + trial),
			Arrival: workload.ArrivalPoisson, Lambda: 0.1 + rng.Float64(),
			Weights: weights, WMax: 9, ZipfS: 1.3,
		}
		in, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := int64(rng.IntN(60))
		upfront := trial%4 < 2

		var batch *online.Result
		if alg == "alg1" {
			batch, err = online.Alg1(in, g)
		} else {
			batch, err = online.Alg2(in, g)
		}
		if err != nil {
			t.Fatal(err)
		}

		got := driveServed(t, ts.URL, alg, in, g, upfront)

		want := renderExpected(in, g, batch)
		if gotJSON, wantJSON := canonical(t, got), canonical(t, want); gotJSON != wantJSON {
			t.Fatalf("trial %d (%s G=%d T=%d upfront=%v): served != batch\nserved: %s\nbatch:  %s",
				trial, alg, g, in.T, upfront, gotJSON, wantJSON)
		}
		if wantCost := core.TotalCost(in, batch.Schedule, g); got.TotalCost != wantCost {
			t.Fatalf("trial %d: served cost %d, batch cost %d", trial, got.TotalCost, wantCost)
		}
	}
}

// servedResult is the comparable slice of a schedule snapshot.
type servedResult struct {
	Calibrations []CalibrationJSON `json:"calibrations"`
	Assignments  []AssignmentJSON  `json:"assignments"`
	Flow         int64             `json:"flow"`
	TotalCost    int64             `json:"total_cost"`
}

// driveServed runs one full session over HTTP and returns the final
// snapshot reduced to its comparable parts.
func driveServed(t *testing.T, base, alg string, in *core.Instance, g int64, upfront bool) servedResult {
	t.Helper()
	id := mustCreate(t, base, CreateSessionRequest{T: in.T, G: g, Alg: alg})
	url := base + "/v1/sessions/" + id

	jobs := make([]JobSpec, in.N())
	for i, j := range in.Jobs {
		jobs[i] = JobSpec{Release: j.Release, Weight: j.Weight}
	}

	post := func(batch []JobSpec) {
		t.Helper()
		var ar ArrivalsResponse
		if status := doJSON(t, "POST", url+"/arrivals", ArrivalsRequest{Jobs: batch}, &ar); status != 200 {
			t.Fatalf("arrivals: status %d", status)
		}
	}

	next := 0 // first not-yet-posted job (just-in-time mode)
	if upfront {
		post(jobs)
		next = len(jobs)
	}
	done := false
	for steps := 0; !done; {
		if !upfront {
			// Post every job released within the next step window before
			// stepping over it.
			var sr SessionInfo
			if status := doJSON(t, "GET", url, nil, &sr); status != 200 {
				t.Fatalf("info: status %d", status)
			}
			end := sr.Now + 7
			batch := []JobSpec{}
			for next < len(jobs) && jobs[next].Release < end {
				batch = append(batch, jobs[next])
				next++
			}
			if len(batch) > 0 {
				post(batch)
			}
		}
		var sr StepResponse
		if status := doJSON(t, "POST", url+"/step", StepRequest{Steps: 7}, &sr); status != 200 {
			t.Fatalf("step: status %d", status)
		}
		done = sr.Done && next >= len(jobs)
		if steps += 7; steps > 5_000_000 {
			t.Fatal("session never finished")
		}
	}

	var sched ScheduleResponse
	if status := doJSON(t, "GET", url+"/schedule", nil, &sched); status != 200 {
		t.Fatalf("schedule: status %d", status)
	}
	if !sched.Done {
		t.Fatalf("snapshot not done: %+v", sched.Session)
	}
	doJSON(t, "DELETE", url, nil, nil)
	return servedResult{
		Calibrations: sched.Calibrations,
		Assignments:  sched.Assignments,
		Flow:         sched.Flow,
		TotalCost:    sched.TotalCost,
	}
}

// renderExpected converts a batch result into the server's wire shape.
func renderExpected(in *core.Instance, g int64, res *online.Result) servedResult {
	out := servedResult{
		Calibrations: make([]CalibrationJSON, len(res.Schedule.Calendar)),
		Assignments:  make([]AssignmentJSON, len(res.Schedule.Assignments)),
	}
	for i, c := range res.Schedule.Calendar {
		out.Calibrations[i] = CalibrationJSON{Machine: c.Machine, Start: c.Start, Trigger: res.Triggers[i].String()}
	}
	for i, a := range res.Schedule.Assignments {
		j := in.Jobs[i]
		out.Assignments[i] = AssignmentJSON{
			Job: j.ID, Release: j.Release, Weight: j.Weight,
			Machine: a.Machine, Start: a.Start,
		}
	}
	out.Flow = core.Flow(in, res.Schedule)
	out.TotalCost = core.TotalCost(in, res.Schedule, g)
	return out
}

// canonical marshals v deterministically for byte comparison.
func canonical(t *testing.T, v servedResult) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServedMatchesBatchFixed pins one hand-checked instance end to end,
// so a differential failure above has a small reproducer nearby.
func TestServedMatchesBatchFixed(t *testing.T) {
	_, ts := testServer(t, Config{})
	in := core.MustInstance(1, 5, []int64{0, 3, 20}, []int64{1, 1, 1})
	const g = 16
	batch, err := online.Alg1(in, g)
	if err != nil {
		t.Fatal(err)
	}
	got := driveServed(t, ts.URL, "alg1", in, g, true)
	want := renderExpected(in, g, batch)
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("served %+v\nbatch  %+v", got, want)
	}
}
