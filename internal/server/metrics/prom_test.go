package metrics

import (
	"bufio"
	"math"
	"regexp"
	"strings"
	"testing"
	"time"
)

// expositionLine matches one Prometheus text-format sample:
// name{labels} value, optionally followed by an OpenMetrics-style
// exemplar (` # {labels} value`) — the same shape the CI gate enforces
// on a live scrape.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?( # \{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\} -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)?$`)

func TestWritePrometheusWellFormed(t *testing.T) {
	// Touch the shared registry so every family has data; tests share the
	// process-global vars, so only shape (not absolute values) is
	// asserted.
	StepsServed.Add(3)
	QueueDepth.Add(2)
	QueueDepth.Add(-2)
	StepLatency.Observe(120 * time.Microsecond)
	StepLatency.Observe(2 * time.Millisecond)

	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE calibserved_build_info gauge",
		`calibserved_build_info{engines=`,
		"# TYPE calibserved_phase_queue_wait_latency_seconds histogram",
		"# TYPE calibserved_steps_served counter",
		"# TYPE calibserved_queue_depth gauge",
		"# TYPE calibserved_sessions_active gauge",
		"# TYPE calibserved_step_latency_seconds histogram",
		`calibserved_step_latency_seconds_bucket{le="+Inf"}`,
		"calibserved_step_latency_seconds_sum",
		"calibserved_step_latency_seconds_count",
		`calibserved_step_latency_quantile_seconds{quantile="0.5"}`,
		`calibserved_step_latency_quantile_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	sc := bufio.NewScanner(strings.NewReader(out))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %d: %q", lines, line)
		}
	}
	if lines == 0 {
		t.Fatal("empty exposition")
	}
	if strings.Contains(out, "memstats") || strings.Contains(out, "cmdline") {
		t.Error("exposition leaked non-calibserved expvars")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := &Histogram{}
	h.Observe(10 * time.Microsecond)
	h.Observe(60 * time.Microsecond)
	h.Observe(time.Minute)
	var b strings.Builder
	writePromHistogram(&b, "x", h)
	out := b.String()
	if !strings.Contains(out, `x_seconds_bucket{le="5e-05"} 1`) {
		t.Errorf("first bucket not cumulative-1:\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_bucket{le="+Inf"} 3`) {
		t.Errorf("+Inf bucket must equal total count:\n%s", out)
	}
	if !strings.Contains(out, "x_seconds_count 3") {
		t.Errorf("count wrong:\n%s", out)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := &Histogram{}
	h.ObserveTraced(10*time.Microsecond, "0123456789abcdef0123456789abcdef")
	h.ObserveTraced(60*time.Microsecond, "") // empty trace ID: no exemplar
	var b strings.Builder
	writePromHistogram(&b, "x", h)
	out := b.String()
	want := `x_seconds_bucket{le="5e-05"} 1 # {trace_id="0123456789abcdef0123456789abcdef"} 1e-05`
	if !strings.Contains(out, want) {
		t.Errorf("exemplar line missing, want %q in:\n%s", want, out)
	}
	if strings.Contains(out, `le="0.0001"} 2 #`) {
		t.Errorf("untraced bucket grew an exemplar:\n%s", out)
	}
	// Every line (exemplars included) must satisfy the CI shape.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed line %q", line)
		}
	}
	// Last traced sample in a bucket wins.
	h.ObserveTraced(12*time.Microsecond, "ffffffffffffffffffffffffffffffff")
	if ex := h.Exemplars()[0]; ex.TraceID != "ffffffffffffffffffffffffffffffff" {
		t.Errorf("exemplar not last-write-wins: %+v", ex)
	}
}

func TestBuildInfoGauge(t *testing.T) {
	prev := CurrentBuildInfo()
	defer SetBuildInfo(prev)
	SetBuildInfo(BuildInfo{Version: "v9.9", Fsync: "always", Engines: "alg1,alg2"})
	var b strings.Builder
	writeBuildInfo(&b)
	out := b.String()
	if !strings.Contains(out, `calibserved_build_info{engines="alg1,alg2",fsync="always",go_version="go`) ||
		!strings.Contains(out, `version="v9.9"} 1`) {
		t.Errorf("build info gauge wrong:\n%s", out)
	}
	line := strings.Split(strings.TrimSpace(out), "\n")[1]
	if !expositionLine.MatchString(line) {
		t.Errorf("malformed build info line %q", line)
	}
}

func TestEstimateQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 samples <=1s, 10 in (1,2].
	counts := []int64{10, 10, 0, 0}
	if got := estimateQuantile(counts, bounds, 0.5); got != 1 {
		t.Errorf("p50 = %v, want 1 (end of first bucket)", got)
	}
	got := estimateQuantile(counts, bounds, 0.75)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5 (midpoint of second bucket)", got)
	}
	// Overflow-bucket mass clamps to the largest finite bound.
	if got := estimateQuantile([]int64{0, 0, 0, 5}, bounds, 0.99); got != 4 {
		t.Errorf("overflow quantile = %v, want clamp to 4", got)
	}
	if got := estimateQuantile([]int64{0, 0, 0, 0}, bounds, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
