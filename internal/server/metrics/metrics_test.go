package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

func TestHistogramBucketsAndJSON(t *testing.T) {
	h := &Histogram{} // unpublished: tests must not collide with the global registry
	before := h.Count()
	h.Observe(10 * time.Microsecond)  // first bucket
	h.Observe(700 * time.Microsecond) // le_1ms
	h.Observe(2 * time.Hour)          // overflow bucket
	if got := h.Count() - before; got != 3 {
		t.Fatalf("count delta = %d, want 3", got)
	}
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(h.String()), &decoded); err != nil {
		t.Fatalf("histogram JSON invalid: %v\n%s", err, h.String())
	}
	if decoded["le_50µs"] != 1 || decoded["le_1ms"] != 1 || decoded["+inf"] != 1 {
		t.Fatalf("bucket placement wrong: %v", decoded)
	}
	if decoded["count"] != 3 || decoded["total_ns"] == 0 {
		t.Fatalf("summary fields wrong: %v", decoded)
	}
	if len(decoded) != numBuckets+2 {
		t.Fatalf("%d JSON fields, want %d", len(decoded), numBuckets+2)
	}
}

func TestGlobalVarsPublished(t *testing.T) {
	// The package-level vars must exist and be usable; a duplicate
	// registration would have panicked at init.
	StepsServed.Add(0)
	SessionsActive.Add(0)
	StepLatency.Observe(time.Millisecond)
}
