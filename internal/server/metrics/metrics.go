// Package metrics publishes calibserved's live operational counters via
// the standard library's expvar registry, so a plain GET /debug/vars
// exposes them with zero dependencies.
//
// This is a reporting package, deliberately outside the exact-arithmetic
// set enforced by caliblint's exactarith analyzer (see the reporting list
// in internal/lint/exactarith.go): latency observations are durations,
// not costs, and never feed back into the scheduling objective.
//
// All vars live in the process-global expvar registry, which panics on
// duplicate registration; everything here is therefore created exactly
// once at package init and shared by every Server in the process (the
// normal daemon case). Tests that boot several servers share the
// counters, so they assert on deltas, not absolutes.
package metrics

import (
	"expvar"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"
)

// Counters for the serving layer, named with a "calibserved." prefix so
// they are easy to pick out of /debug/vars among the runtime defaults.
var (
	// SessionsActive is a gauge of live sessions.
	SessionsActive = expvar.NewInt("calibserved.sessions.active")
	// SessionsCreated counts every session ever created.
	SessionsCreated = expvar.NewInt("calibserved.sessions.created")
	// SessionsEvicted counts sessions removed by the idle-TTL janitor.
	SessionsEvicted = expvar.NewInt("calibserved.sessions.evicted")
	// SessionsExported counts sessions handed off to another node via
	// POST /v1/sessions/{id}/export (migration source side).
	SessionsExported = expvar.NewInt("calibserved.sessions.exported")
	// SessionsImported counts sessions received via
	// POST /v1/sessions/import (migration target side).
	SessionsImported = expvar.NewInt("calibserved.sessions.imported")
	// StepsServed counts simulated time steps across all sessions.
	StepsServed = expvar.NewInt("calibserved.steps.served")
	// ArrivalsAccepted counts jobs admitted into arrival buffers.
	ArrivalsAccepted = expvar.NewInt("calibserved.arrivals.accepted")
	// ArrivalsRejected counts jobs refused (backpressure or invalid).
	ArrivalsRejected = expvar.NewInt("calibserved.arrivals.rejected")
	// QueueDepth is a gauge of buffered-but-unscheduled arrivals summed
	// over all sessions.
	QueueDepth = expvar.NewInt("calibserved.queue.depth")
	// StepLatency is a histogram of POST .../step handling latency.
	StepLatency = newHistogram("calibserved.step.latency")
	// Per-phase latency histograms, fed from the span plane's store
	// observer (internal/trace): each accepted span of the named phase
	// lands one sample here with its trace ID as the Prometheus
	// exemplar, so a slow bucket links straight to an example trace.
	// Names use underscores (not the phase constants' dashes) because
	// dashes are illegal in Prometheus metric names.

	// PhaseHTTPLatency times whole calibserved /v1 handlers ("http").
	PhaseHTTPLatency = newHistogram("calibserved.phase.http.latency")
	// PhaseQueueWaitLatency times session-worker queue wait ("queue-wait").
	PhaseQueueWaitLatency = newHistogram("calibserved.phase.queue_wait.latency")
	// PhaseEngineStepLatency times the engine step loop ("engine-step").
	PhaseEngineStepLatency = newHistogram("calibserved.phase.engine_step.latency")
	// PhaseWALAppendLatency times WAL appends minus fsync ("wal-append").
	PhaseWALAppendLatency = newHistogram("calibserved.phase.wal_append.latency")
	// PhaseFsyncWaitLatency times fsync waits ("fsync-wait").
	PhaseFsyncWaitLatency = newHistogram("calibserved.phase.fsync_wait.latency")
	// WALAppends counts records appended across all session WALs.
	WALAppends = expvar.NewInt("calibserved.wal.appends")
	// WALBytes counts bytes appended across all session WALs.
	WALBytes = expvar.NewInt("calibserved.wal.bytes")
	// GroupCommits counts fsync groups committed by the store's group
	// committer (-fsync always with group commit enabled).
	GroupCommits = expvar.NewInt("calibserved.wal.group_commits")
	// GroupCommitRecords counts records made durable through those
	// groups; records/commits is the live amortization factor.
	GroupCommitRecords = expvar.NewInt("calibserved.wal.group_commit_records")
	// SnapshotsWritten counts snapshots persisted; each one truncates the
	// WAL behind it.
	SnapshotsWritten = expvar.NewInt("calibserved.snapshots.written")
	// RecoveredSessions counts sessions rebuilt from disk at boot.
	RecoveredSessions = expvar.NewInt("calibserved.recovery.sessions")
	// RecoveredRecords counts WAL records replayed at boot.
	RecoveredRecords = expvar.NewInt("calibserved.recovery.records")
	// RecoveryTruncations counts torn or corrupt WAL tails cut at boot.
	RecoveryTruncations = expvar.NewInt("calibserved.recovery.truncations")
	// RecoveryFailed counts session directories that could not be
	// recovered and were left on disk for inspection.
	RecoveryFailed = expvar.NewInt("calibserved.recovery.failed")

	// SolveSubmitted counts accepted POST /v1/solve requests.
	SolveSubmitted = expvar.NewInt("calibserved.solve.submitted")
	// SolveRejected counts solves refused because the pool queue was full.
	SolveRejected = expvar.NewInt("calibserved.solve.rejected")
	// SolveCacheHits counts solves answered from the result cache.
	SolveCacheHits = expvar.NewInt("calibserved.solve.cache.hits")
	// SolveCacheMisses counts solves that had to consult the pool queue.
	SolveCacheMisses = expvar.NewInt("calibserved.solve.cache.misses")
	// SolveCacheEvictions counts LRU evictions from the result cache.
	SolveCacheEvictions = expvar.NewInt("calibserved.solve.cache.evictions")
	// SolveDedupShared counts solves that attached to an identical
	// in-flight DP run instead of starting their own.
	SolveDedupShared = expvar.NewInt("calibserved.solve.dedup.shared")
	// SolveRuns counts DP executions actually performed by pool workers.
	SolveRuns = expvar.NewInt("calibserved.solve.runs")
	// SolveCompleted counts solve handles finished with a result.
	SolveCompleted = expvar.NewInt("calibserved.solve.completed")
	// SolveFailed counts solve handles finished with an error.
	SolveFailed = expvar.NewInt("calibserved.solve.failed")
	// SolveQueueDepth is a gauge of queued (not yet running) solves.
	SolveQueueDepth = expvar.NewInt("calibserved.solve.queue.depth")
	// SolveRunning is a gauge of DP runs currently executing.
	SolveRunning = expvar.NewInt("calibserved.solve.running")
	// SolveCacheEntries is a gauge of live result-cache entries.
	SolveCacheEntries = expvar.NewInt("calibserved.solve.cache.entries")
)

// bucketBounds are the histogram's upper bounds. The last bucket is
// unbounded.
var bucketBounds = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	1 * time.Second,
}

// numBuckets is len(bucketBounds) + 1 (the overflow bucket); init
// asserts the two stay in sync.
const numBuckets = 10

func init() {
	if len(bucketBounds)+1 != numBuckets {
		panic("metrics: numBuckets out of sync with bucketBounds")
	}
}

// Histogram is a fixed-bucket latency histogram published as one expvar
// whose JSON value maps bucket labels to counts, plus "count" and
// "total_ns" for computing the mean. Observe is lock-free.
type Histogram struct {
	counts  [numBuckets]atomic.Int64
	count   atomic.Int64
	totalNS atomic.Int64
	// exemplars holds, per bucket, the most recent traced sample that
	// landed there (last-write-wins; nil until a traced sample lands).
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to a concrete trace: the trace ID
// of the most recent traced sample that landed in the bucket and that
// sample's value in seconds. Rendered as an OpenMetrics-style exemplar
// suffix on the bucket line.
type Exemplar struct {
	TraceID string
	Seconds float64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{}
	expvar.Publish(name, h)
	return h
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.totalNS.Add(int64(d))
}

// ObserveTraced records one latency sample and, when traceID is
// non-empty, pins it as the bucket's exemplar. With an empty traceID it
// is exactly Observe.
func (h *Histogram) ObserveTraced(d time.Duration, traceID string) {
	i := bucketIndex(d)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.totalNS.Add(int64(d))
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Seconds: d.Seconds()})
	}
}

func bucketIndex(d time.Duration) int {
	i := 0
	for i < len(bucketBounds) && d > bucketBounds[i] {
		i++
	}
	return i
}

// Exemplars returns the per-bucket exemplars, aligned with Snapshot's
// counts; entries are zero where no traced sample has landed.
func (h *Histogram) Exemplars() []Exemplar {
	out := make([]Exemplar, numBuckets)
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out[i] = *e
		}
	}
	return out
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketBounds returns the histogram bucket upper bounds; the final
// bucket (index len(BucketBounds())) is unbounded.
func BucketBounds() []time.Duration {
	return append([]time.Duration(nil), bucketBounds...)
}

// Snapshot returns the per-bucket counts (aligned with BucketBounds plus
// one overflow bucket), the total sample count, and the summed latency in
// nanoseconds. Each load is individually atomic; a snapshot taken under
// concurrent Observe calls may be off by in-flight samples, which is fine
// for scraping.
func (h *Histogram) Snapshot() (counts []int64, count, totalNS int64) {
	counts = make([]int64, numBuckets)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), h.totalNS.Load()
}

// BuildInfo labels the calibserved_build_info gauge so fleet rollouts
// (mixed versions, fsync modes, engine sets) are visible in calibgate's
// aggregated exposition, which stamps each node's gauge with its node
// label.
type BuildInfo struct {
	Version   string
	GoVersion string
	Fsync     string
	Engines   string
}

var buildInfo atomic.Pointer[BuildInfo]

func init() {
	buildInfo.Store(&BuildInfo{Version: "dev", GoVersion: runtime.Version()})
}

// SetBuildInfo publishes the daemon's build identity; the daemon calls
// it once at boot. An empty GoVersion is filled from the runtime.
func SetBuildInfo(bi BuildInfo) {
	if bi.GoVersion == "" {
		bi.GoVersion = runtime.Version()
	}
	buildInfo.Store(&bi)
}

// CurrentBuildInfo returns the published build identity.
func CurrentBuildInfo() BuildInfo { return *buildInfo.Load() }

// String renders the histogram as a JSON object, satisfying expvar.Var.
func (h *Histogram) String() string {
	buf := []byte{'{'}
	for i := range h.counts {
		label := "+inf"
		if i < len(bucketBounds) {
			label = "le_" + bucketBounds[i].String()
		}
		buf = strconv.AppendQuote(buf, label)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, h.counts[i].Load(), 10)
		buf = append(buf, ',')
	}
	buf = append(buf, fmt.Sprintf("%q:%d,%q:%d}", "count", h.count.Load(), "total_ns", h.totalNS.Load())...)
	return string(buf)
}
