package metrics

import (
	"expvar"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format 0.0.4) over the calibserved expvar
// registry: GET /metrics renders exactly the counters /debug/vars already
// publishes, so the two views can never disagree, plus estimated latency
// quantiles derived from the step histogram. Like the rest of this
// package the float arithmetic here is reporting-only (exactarith
// exemption; see internal/lint/exactarith.go).

// gaugeKeys marks the expvar keys whose value can go down; everything
// else with the calibserved prefix is a monotone counter.
var gaugeKeys = map[string]bool{
	"calibserved.sessions.active":     true,
	"calibserved.queue.depth":         true,
	"calibserved.solve.queue.depth":   true,
	"calibserved.solve.running":       true,
	"calibserved.solve.cache.entries": true,
}

// promName converts an expvar key to a Prometheus metric name.
func promName(key string) string { return strings.ReplaceAll(key, ".", "_") }

// WritePrometheus renders every calibserved.* expvar in Prometheus text
// exposition format: expvar.Int vars as counters/gauges, Histograms as
// native histograms (cumulative le buckets in seconds, _sum, _count) plus
// a gauge family of estimated quantiles.
func WritePrometheus(w io.Writer) {
	writeBuildInfo(w)
	expvar.Do(func(kv expvar.KeyValue) {
		if !strings.HasPrefix(kv.Key, "calibserved.") {
			return
		}
		switch v := kv.Value.(type) {
		case *expvar.Int:
			name := promName(kv.Key)
			typ := "counter"
			if gaugeKeys[kv.Key] {
				typ = "gauge"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, v.Value())
		case *Histogram:
			writePromHistogram(w, promName(kv.Key), v)
		}
	})
}

// writeBuildInfo emits the constant-1 calibserved_build_info gauge whose
// labels carry the daemon's build identity (satellite of the rollout
// visibility story: the aggregator re-emits it per node).
func writeBuildInfo(w io.Writer) {
	bi := CurrentBuildInfo()
	fmt.Fprintf(w, "# TYPE calibserved_build_info gauge\n")
	fmt.Fprintf(w, "calibserved_build_info{engines=%q,fsync=%q,go_version=%q,version=%q} 1\n",
		bi.Engines, bi.Fsync, bi.GoVersion, bi.Version)
}

func writePromHistogram(w io.Writer, base string, h *Histogram) {
	counts, count, totalNS := h.Snapshot()
	exemplars := h.Exemplars()
	bounds := BucketBounds()
	name := base + "_seconds"
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i].Seconds())
		}
		// A bucket with a traced sample carries an OpenMetrics-style
		// exemplar suffix linking it to a concrete trace ID.
		if ex := exemplars[i]; ex.TraceID != "" {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d # {trace_id=%q} %s\n", name, le, cum, ex.TraceID, formatFloat(ex.Seconds))
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(totalNS)/1e9))
	fmt.Fprintf(w, "%s_count %d\n", name, count)

	qname := base + "_quantile_seconds"
	fmt.Fprintf(w, "# TYPE %s gauge\n", qname)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", qname, formatFloat(q), formatFloat(estimateQuantile(counts, bounds2seconds(bounds), q)))
	}
}

func bounds2seconds(bounds []time.Duration) []float64 {
	out := make([]float64, len(bounds))
	for i, b := range bounds {
		out[i] = b.Seconds()
	}
	return out
}

// estimateQuantile linearly interpolates the q-quantile inside the bucket
// containing it, the standard Prometheus histogram_quantile estimate. The
// unbounded overflow bucket is clamped to the largest finite bound (the
// estimate cannot exceed what the histogram can resolve). Returns 0 for
// an empty histogram.
func estimateQuantile(counts []int64, bounds []float64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (bounds[i]-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// formatFloat renders a float in the shortest round-trip form, which the
// exposition format accepts (including exponents like 5e-05).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
