package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"calibsched/internal/server/metrics"
	"calibsched/internal/trace"
)

// TestTraceEndpoint checks that GET /v1/sessions/{id}/trace reports one
// decision event per calibration, aligned with the schedule snapshot and
// carrying the documented rule identifier.
func TestTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 4, G: 8, Alg: "alg2"})

	var ar ArrivalsResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/arrivals", ArrivalsRequest{
		Jobs: []JobSpec{{Release: 0, Weight: 3}, {Release: 1, Weight: 3}, {Release: 9, Weight: 5}},
	}, &ar); status != 200 {
		t.Fatalf("arrivals: status %d", status)
	}
	var sr StepResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 40}, &sr); status != 200 {
		t.Fatalf("step: status %d", status)
	}
	if !sr.Done {
		t.Fatalf("session not done after 40 steps: %+v", sr)
	}

	var sched ScheduleResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/schedule", nil, &sched); status != 200 {
		t.Fatalf("schedule: status %d", status)
	}
	if len(sched.Calibrations) == 0 {
		t.Fatal("workload produced no calibrations; trace has nothing to check")
	}

	var tr TraceResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/trace", nil, &tr); status != 200 {
		t.Fatalf("trace: status %d", status)
	}
	if tr.Session != id {
		t.Errorf("trace session = %q, want %q", tr.Session, id)
	}
	if tr.Dropped != 0 || tr.Emitted != int64(len(tr.Events)) {
		t.Errorf("emitted %d dropped %d for %d events; ring should not have wrapped", tr.Emitted, tr.Dropped, len(tr.Events))
	}
	if len(tr.Events) != len(sched.Calibrations) {
		t.Fatalf("%d trace events for %d calibrations", len(tr.Events), len(sched.Calibrations))
	}
	for i, ev := range tr.Events {
		c := sched.Calibrations[i]
		if ev.Time != c.Start || ev.Machine != c.Machine {
			t.Errorf("event %d at (m%d, t%d), calendar says (m%d, t%d)", i, ev.Machine, ev.Time, c.Machine, c.Start)
		}
		if want := fmt.Sprintf("alg2.%s-open", c.Trigger); ev.Rule != want {
			t.Errorf("event %d rule = %q, want %q", i, ev.Rule, want)
		}
		if trace.RuleDoc(ev.Rule) == "" {
			t.Errorf("event %d rule %q has no documentation", i, ev.Rule)
		}
		if ev.Seq != int64(i+1) || ev.Calibrations != i+1 {
			t.Errorf("event %d: seq %d, calibrations %d", i, ev.Seq, ev.Calibrations)
		}
	}

	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/nope/trace", nil, nil); status != 404 {
		t.Errorf("trace of unknown session: status %d, want 404", status)
	}
}

// TestTraceRingDropsOldest drives more calibrations than the configured
// ring capacity and checks the window semantics: newest events kept, drop
// count reported, sequence numbers contiguous.
func TestTraceRingDropsOldest(t *testing.T) {
	_, ts := testServer(t, Config{TraceRing: 4})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 1, G: 1, Alg: "alg2"})

	jobs := make([]JobSpec, 12)
	for i := range jobs {
		jobs[i] = JobSpec{Release: int64(2 * i), Weight: 1}
	}
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/arrivals", ArrivalsRequest{Jobs: jobs}, nil); status != 200 {
		t.Fatalf("arrivals: status %d", status)
	}
	var sr StepResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 40}, &sr); status != 200 {
		t.Fatalf("step: status %d", status)
	}

	var tr TraceResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/trace", nil, &tr); status != 200 {
		t.Fatalf("trace: status %d", status)
	}
	if tr.Capacity != 4 || len(tr.Events) != 4 {
		t.Fatalf("capacity %d, %d events; want 4 and 4", tr.Capacity, len(tr.Events))
	}
	if tr.Dropped == 0 || tr.Emitted != tr.Dropped+4 {
		t.Fatalf("emitted %d dropped %d; want a wrapped ring with emitted = dropped + 4", tr.Emitted, tr.Dropped)
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Seq != tr.Events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq after drop: %d then %d", tr.Events[i-1].Seq, tr.Events[i].Seq)
		}
	}
	if tr.Events[len(tr.Events)-1].Seq != tr.Emitted {
		t.Fatalf("newest seq %d != emitted %d", tr.Events[len(tr.Events)-1].Seq, tr.Emitted)
	}
}

// TestTraceConcurrentWithStepping reads the trace ring over HTTP while
// the session worker is writing to it — the -race gate for the
// worker/handler sharing of trace.Ring.
func TestTraceConcurrentWithStepping(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 2, G: 2, Alg: "alg1"})

	jobs := make([]JobSpec, 200)
	for i := range jobs {
		jobs[i] = JobSpec{Release: int64(3 * i), Weight: 1}
	}
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/arrivals", ArrivalsRequest{Jobs: jobs}, nil); status != 200 {
		t.Fatalf("arrivals: status %d", status)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	stepping := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(stepping)
		for i := 0; i < 40; i++ {
			// Plain HTTP here: test helpers may not Fatal off the test
			// goroutine.
			resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/step", "application/json",
				strings.NewReader(`{"steps":20}`))
			if err != nil {
				t.Errorf("step batch %d: %v", i, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("step batch %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	reads := 0
	for done := false; !done; {
		select {
		case <-stepping:
			done = true
		default:
		}
		var tr TraceResponse
		if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/trace", nil, &tr); status != 200 {
			t.Fatalf("trace read %d: status %d", reads, status)
		}
		if int64(len(tr.Events)) != tr.Emitted-tr.Dropped {
			t.Fatalf("inconsistent snapshot: %d events, emitted %d, dropped %d", len(tr.Events), tr.Emitted, tr.Dropped)
		}
		for i := 1; i < len(tr.Events); i++ {
			if tr.Events[i].Seq != tr.Events[i-1].Seq+1 {
				t.Fatalf("torn snapshot: seq %d then %d", tr.Events[i-1].Seq, tr.Events[i].Seq)
			}
		}
		reads++
	}
	wg.Wait()
	if reads == 0 {
		t.Fatal("trace reader never overlapped the stepping writer")
	}
}

// syncBuf is a goroutine-safe log sink: the HTTP server's handler
// goroutines write access-log lines while the test goroutine reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestAccessLogShape parses one JSON access-log line and asserts the
// structured keys the log contract promises (method, path, status,
// latency, plus the handler-attached session id and step count).
func TestAccessLogShape(t *testing.T) {
	buf := &syncBuf{}
	_, ts := testServer(t, Config{Logger: slog.New(slog.NewJSONHandler(buf, nil))})

	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 2, G: 4, Alg: "alg1"})
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/arrivals", ArrivalsRequest{
		Jobs: []JobSpec{{Release: 0, Weight: 1}},
	}, nil); status != 200 {
		t.Fatalf("arrivals: status %d", status)
	}
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 3}, nil); status != 200 {
		t.Fatalf("step: status %d", status)
	}

	// The access-log record is written after the response is sent; wait
	// for the step line to land.
	var line string
	deadline := time.Now().Add(2 * time.Second)
	for line == "" {
		for _, l := range strings.Split(buf.String(), "\n") {
			if strings.Contains(l, "/step") {
				line = l
				break
			}
		}
		if line == "" {
			if time.Now().After(deadline) {
				t.Fatalf("no /step access-log line appeared; log so far:\n%s", buf.String())
			}
			time.Sleep(time.Millisecond)
		}
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, line)
	}
	want := map[string]any{
		"msg":     "request",
		"method":  "POST",
		"path":    "/v1/sessions/" + id + "/step",
		"status":  float64(200),
		"session": id,
		"steps":   float64(3),
	}
	for k, v := range want {
		if rec[k] != v {
			t.Errorf("log[%q] = %v, want %v (line: %s)", k, rec[k], v, line)
		}
	}
	for _, k := range []string{"time", "level", "latency"} {
		if _, ok := rec[k]; !ok {
			t.Errorf("log line missing %q: %s", k, line)
		}
	}
}

// TestQueueDepthRestoredAfterBrokenSessionEviction is the regression test
// for the stale-gauge bug: a session whose engine panics mid-step (int64
// overflow in the trigger arithmetic) used to leave its already-fed jobs
// on the queue-depth gauge forever, because the post-step decrement was
// skipped and teardown only subtracted the surviving buffer length. The
// gauge must return to baseline the moment the janitor evicts the broken
// session.
func TestQueueDepthRestoredAfterBrokenSessionEviction(t *testing.T) {
	srv, ts := testServer(t, Config{IdleTTL: 50 * time.Millisecond, JanitorInterval: 10 * time.Millisecond})
	baseline := metrics.QueueDepth.Value()

	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 4, G: 1 << 40, Alg: "alg2"})
	// Job 0 matures immediately and its weight overflows the weight
	// trigger's T * totalWeight product; jobs 1 and 2 stay buffered.
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/arrivals", ArrivalsRequest{
		Jobs: []JobSpec{
			{Release: 0, Weight: math.MaxInt64 / 2},
			{Release: 50, Weight: 1},
			{Release: 60, Weight: 1},
		},
	}, nil); status != 200 {
		t.Fatalf("arrivals: status %d", status)
	}
	var errResp ErrorResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 1}, &errResp); status != 500 {
		t.Fatalf("overflow step: status %d (%s), want 500", status, errResp.Error)
	}
	// The fed job must already be off the gauge even though the engine
	// panicked before completing the step; only the two buffered jobs
	// remain.
	if got := metrics.QueueDepth.Value(); got != baseline+2 {
		t.Fatalf("queue depth after broken step = %d, want baseline+2 = %d", got, baseline+2)
	}

	// The janitor removes the session from the table before retire
	// finishes the gauge release, so poll the gauge itself.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Manager().Len() > 0 || metrics.QueueDepth.Value() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("gauge never returned to baseline: sessions %d, queue depth %d, want %d",
				srv.Manager().Len(), metrics.QueueDepth.Value(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil, nil); status != http.StatusNotFound {
		t.Fatalf("evicted session still resolvable: status %d", status)
	}
}

// TestMetricsEndpoint scrapes GET /metrics and checks the content type
// and that the calibserved families render.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text 0.0.4", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"calibserved_sessions_active",
		"calibserved_queue_depth",
		"# TYPE calibserved_step_latency_seconds histogram",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
