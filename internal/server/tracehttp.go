package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"calibsched/internal/server/metrics"
	"calibsched/internal/trace"
)

// The node-local trace API: GET /v1/traces lists the span store's
// retained traces, GET /v1/traces/{traceID} returns one trace's spans.
// calibgate exposes the same two routes fleet-wide by fanning the
// per-node fragments out and stitching them (internal/cluster).

// traceablePath reports whether a request path gets an http root span.
// Only the /v1 API is traced; the trace API itself is excluded so
// reading traces does not pollute the store it reads, and the probe and
// metrics endpoints stay off the span path entirely.
func traceablePath(p string) bool {
	return strings.HasPrefix(p, "/v1/") && !strings.HasPrefix(p, "/v1/traces")
}

// observePhase fans accepted worker-phase spans into the per-phase
// Prometheus histograms, carrying the trace ID through as the bucket
// exemplar. Installed as the span store's Observer.
func observePhase(sp trace.Span) {
	var h *metrics.Histogram
	switch sp.Phase {
	case trace.PhaseHTTP:
		h = metrics.PhaseHTTPLatency
	case trace.PhaseQueueWait:
		h = metrics.PhaseQueueWaitLatency
	case trace.PhaseEngineStep:
		h = metrics.PhaseEngineStepLatency
	case trace.PhaseWALAppend:
		h = metrics.PhaseWALAppendLatency
	case trace.PhaseFsyncWait:
		h = metrics.PhaseFsyncWaitLatency
	default:
		return
	}
	h.ObserveTraced(time.Duration(sp.Duration), sp.TraceID)
}

// handleTraceList serves the span store's index.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		writeError(w, &apiError{status: 404, msg: "span recording is disabled on this node"})
		return
	}
	sums := s.spans.Summaries()
	if sums == nil {
		sums = []trace.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, TraceListResponse{Traces: sums, Stats: s.spans.Stats()})
}

// handleTraceGet serves one trace's recorded spans.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		writeError(w, &apiError{status: 404, msg: "span recording is disabled on this node"})
		return
	}
	id := r.PathValue("traceID")
	spans := s.spans.Trace(id)
	if spans == nil {
		writeError(w, &apiError{status: 404, msg: fmt.Sprintf("unknown trace %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, TraceGetResponse{TraceID: id, Spans: spans})
}
