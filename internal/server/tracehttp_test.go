package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"calibsched/internal/store"
	"calibsched/internal/trace"
)

// tracedJSON issues a request carrying the given traceparent header and
// returns the status, the response traceparent, and the decoded body.
func tracedJSON(t *testing.T, method, url, traceparent string, body, out any) (int, string) {
	t.Helper()
	var b []byte
	if body != nil {
		var err error
		if b, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("traceparent")
}

// phaseSet collects the distinct phases of a span slice.
func phaseSet(spans []trace.Span) map[string]bool {
	set := map[string]bool{}
	for _, sp := range spans {
		set[sp.Phase] = true
	}
	return set
}

func TestTraceEndpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Store: st})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 8, G: 16, Alg: "alg2"})

	// A client-minted traceparent must be continued, not replaced.
	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	parent := "00-" + wantTrace + "-00f067aa0ba902b7-01"

	var ar ArrivalsResponse
	status, respTP := tracedJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/arrivals", parent,
		ArrivalsRequest{Jobs: []JobSpec{{Release: 0, Weight: 3}}}, &ar)
	if status != 200 || ar.Accepted != 1 {
		t.Fatalf("arrivals: status %d resp %+v", status, ar)
	}
	if sc, ok := trace.ParseTraceparent(respTP); !ok || sc.TraceID != wantTrace {
		t.Fatalf("response traceparent %q does not continue trace %s", respTP, wantTrace)
	}
	var sr StepResponse
	if status, _ = tracedJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", parent,
		StepRequest{Steps: 4}, &sr); status != 200 {
		t.Fatalf("step: status %d", status)
	}

	var list TraceListResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/traces", nil, &list); status != 200 {
		t.Fatalf("trace list: status %d", status)
	}
	var found *trace.TraceSummary
	for i := range list.Traces {
		if list.Traces[i].TraceID == wantTrace {
			found = &list.Traces[i]
		}
	}
	if found == nil {
		t.Fatalf("trace %s not in list %+v", wantTrace, list.Traces)
	}
	if found.RootPhase != trace.PhaseHTTP || found.RootDurationNS <= 0 {
		t.Fatalf("trace summary %+v: want http root with positive duration", *found)
	}
	if list.Stats.SpansAdded == 0 {
		t.Fatalf("stats %+v: no spans counted", list.Stats)
	}

	var got TraceGetResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/traces/"+wantTrace, nil, &got); status != 200 {
		t.Fatalf("trace get: status %d", status)
	}
	phases := phaseSet(got.Spans)
	for _, want := range []string{
		trace.PhaseHTTP, trace.PhaseQueueWait, trace.PhaseEngineStep,
		trace.PhaseWALAppend, trace.PhaseFsyncWait,
	} {
		if !phases[want] {
			t.Errorf("trace missing phase %q (have %v)", want, phases)
		}
	}
	// Both requests joined the same client trace, so there are two http
	// root spans; every span must carry the client's trace ID, and each
	// root's children must not exceed it.
	var roots int
	children := map[string]time.Duration{}
	for _, sp := range got.Spans {
		if sp.TraceID != wantTrace {
			t.Fatalf("span %+v: trace ID != %s", sp, wantTrace)
		}
		if sp.Phase == trace.PhaseHTTP {
			roots++
		} else {
			children[sp.Parent] += time.Duration(sp.Duration)
		}
	}
	if roots != 2 {
		t.Fatalf("got %d http spans, want 2 (arrivals + step)", roots)
	}
	for _, sp := range got.Spans {
		if sp.Phase != trace.PhaseHTTP {
			continue
		}
		if sum := children[sp.SpanID]; sum > time.Duration(sp.Duration) {
			t.Errorf("children of %s sum to %v > root %v", sp.SpanID, sum, time.Duration(sp.Duration))
		}
	}

	var errResp ErrorResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/traces/ffffffffffffffffffffffffffffffff", nil, &errResp); status != 404 {
		t.Fatalf("unknown trace: status %d, want 404", status)
	}
	if !strings.Contains(errResp.Error, "unknown trace") {
		t.Fatalf("unknown trace error = %q", errResp.Error)
	}
}

func TestTraceEndpointsDisabled(t *testing.T) {
	_, ts := testServer(t, Config{SpanStoreSize: -1})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 8, G: 16, Alg: "alg2"})

	// Requests still work and mint no spans — the untraced nil-Active path.
	var sr StepResponse
	status, respTP := tracedJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", StepRequest{Steps: 1}, &sr)
	if status != 200 {
		t.Fatalf("step: status %d", status)
	}
	if respTP != "" {
		t.Fatalf("disabled node answered traceparent %q", respTP)
	}
	var errResp ErrorResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/traces", nil, &errResp); status != 404 {
		t.Fatalf("trace list on disabled node: status %d, want 404", status)
	}
}

func TestTraceUntracedRequestsRecordNothing(t *testing.T) {
	srv, ts := testServer(t, Config{})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 8, G: 16, Alg: "alg2"})
	before := srv.spans.Stats().SpansAdded

	var sr StepResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 1}, &sr); status != 200 {
		t.Fatalf("step: status %d", status)
	}
	// An untraced request still gets a server-minted http root span (so
	// /v1/traces is useful without client cooperation) — but fetching
	// traces must not add more.
	mid := srv.spans.Stats().SpansAdded
	if mid <= before {
		t.Fatalf("step minted no spans (added %d -> %d)", before, mid)
	}
	var list TraceListResponse
	for i := 0; i < 3; i++ {
		if status := doJSON(t, "GET", ts.URL+"/v1/traces", nil, &list); status != 200 {
			t.Fatalf("trace list: status %d", status)
		}
	}
	if after := srv.spans.Stats().SpansAdded; after != mid {
		t.Fatalf("reading traces added spans (%d -> %d)", mid, after)
	}
}
