package server

import (
	"testing"

	"calibsched/internal/store"
)

// feedAndStep drives a session through arrivals and steps so it has
// state worth migrating: buffered future arrivals, engine-held jobs, and
// some schedule already built.
func feedAndStep(t *testing.T, base, id string) {
	t.Helper()
	var ar ArrivalsResponse
	status := doJSON(t, "POST", base+"/v1/sessions/"+id+"/arrivals", ArrivalsRequest{
		Jobs: []JobSpec{{Release: 0, Weight: 3}, {Release: 2, Weight: 1}, {Release: 25, Weight: 5}},
	}, &ar)
	if status != 200 {
		t.Fatalf("arrivals: status %d", status)
	}
	var sr StepResponse
	if status := doJSON(t, "POST", base+"/v1/sessions/"+id+"/step", StepRequest{Steps: 10}, &sr); status != 200 {
		t.Fatalf("step: status %d", status)
	}
}

// finishAndFetch steps a session to completion and returns its schedule.
func finishAndFetch(t *testing.T, base, id string) ScheduleResponse {
	t.Helper()
	var sr StepResponse
	if status := doJSON(t, "POST", base+"/v1/sessions/"+id+"/step", StepRequest{Steps: 60}, &sr); status != 200 {
		t.Fatalf("step: status %d", status)
	}
	var sched ScheduleResponse
	if status := doJSON(t, "GET", base+"/v1/sessions/"+id+"/schedule", nil, &sched); status != 200 {
		t.Fatalf("schedule: status %d", status)
	}
	return sched
}

// TestExportImportRoundTrip moves a mid-stream session between two
// in-memory servers and checks the finished schedule matches an
// untouched control fed the identical command stream — migration must
// be invisible to the session's math.
func TestExportImportRoundTrip(t *testing.T) {
	_, src := testServer(t, Config{})
	_, dst := testServer(t, Config{})
	_, ctl := testServer(t, Config{})

	id := mustCreate(t, src.URL, CreateSessionRequest{T: 10, G: 20, Alg: "alg2", ID: "mig-001"})
	if id != "mig-001" {
		t.Fatalf("pinned id came back as %q", id)
	}
	ctlID := mustCreate(t, ctl.URL, CreateSessionRequest{T: 10, G: 20, Alg: "alg2", ID: "mig-001"})
	feedAndStep(t, src.URL, id)
	feedAndStep(t, ctl.URL, ctlID)

	var exp ExportedSession
	if status := doJSON(t, "POST", src.URL+"/v1/sessions/"+id+"/export", nil, &exp); status != 200 {
		t.Fatalf("export: status %d", status)
	}
	if exp.ID != id || exp.Snapshot == nil {
		t.Fatalf("export = id %q snapshot %v", exp.ID, exp.Snapshot != nil)
	}
	// The source no longer serves the session.
	if status := doJSON(t, "GET", src.URL+"/v1/sessions/"+id, nil, nil); status != 404 {
		t.Fatalf("source still serves exported session: status %d", status)
	}

	var info SessionInfo
	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/import", exp, &info); status != 201 {
		t.Fatalf("import: status %d", status)
	}
	if info.ID != id || info.Alg != "alg2" || info.T != 10 || info.G != 20 {
		t.Fatalf("imported info = %+v", info)
	}

	got := finishAndFetch(t, dst.URL, id)
	want := finishAndFetch(t, ctl.URL, ctlID)
	if got.TotalCost != want.TotalCost || got.Flow != want.Flow ||
		len(got.Calibrations) != len(want.Calibrations) || len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("migrated schedule diverged:\n got %+v\nwant %+v", got, want)
	}
	for i := range got.Assignments {
		if got.Assignments[i] != want.Assignments[i] {
			t.Fatalf("assignment %d: got %+v want %+v", i, got.Assignments[i], want.Assignments[i])
		}
	}
}

// TestExportImportPersistent round-trips through stores on both sides
// and then restarts the target, so the imported state must also be
// durable.
func TestExportImportPersistent(t *testing.T) {
	srcStore, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("opening src store: %v", err)
	}
	dstRoot := t.TempDir()
	dstStore, err := store.Open(dstRoot, store.Options{})
	if err != nil {
		t.Fatalf("opening dst store: %v", err)
	}
	_, src := testServer(t, Config{Store: srcStore})
	dstSrv, dst := testServer(t, Config{Store: dstStore})

	id := mustCreate(t, src.URL, CreateSessionRequest{T: 10, G: 20, Alg: "alg2"})
	feedAndStep(t, src.URL, id)

	var exp ExportedSession
	if status := doJSON(t, "POST", src.URL+"/v1/sessions/"+id+"/export", nil, &exp); status != 200 {
		t.Fatalf("export: status %d", status)
	}
	// The settled source directory survives as the crash-safety net...
	if ok, err := srcStore.Exists(id); err != nil || !ok {
		t.Fatalf("source dir gone after export (ok=%v err=%v)", ok, err)
	}
	// ...until DELETE purges it.
	if status := doJSON(t, "DELETE", src.URL+"/v1/sessions/"+id, nil, nil); status != 204 {
		t.Fatalf("post-migration purge: status %d", status)
	}
	if ok, err := srcStore.Exists(id); err != nil || ok {
		t.Fatalf("source dir survived purge (ok=%v err=%v)", ok, err)
	}

	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/import", exp, nil); status != 201 {
		t.Fatalf("import: status %d", status)
	}
	before := finishAndFetch(t, dst.URL, id)

	// Restart the target: the imported session must come back from disk.
	dst.Close()
	if err := dstSrv.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutting down target: %v", err)
	}
	reStore, err := store.Open(dstRoot, store.Options{})
	if err != nil {
		t.Fatalf("reopening dst store: %v", err)
	}
	_, re := testServer(t, Config{Store: reStore})
	var after ScheduleResponse
	if status := doJSON(t, "GET", re.URL+"/v1/sessions/"+id+"/schedule", nil, &after); status != 200 {
		t.Fatalf("schedule after restart: status %d", status)
	}
	if after.TotalCost != before.TotalCost || after.Assigned != before.Assigned {
		t.Fatalf("restart diverged: before %+v after %+v", before, after)
	}
}

func TestImportConflictsAndValidation(t *testing.T) {
	_, src := testServer(t, Config{})
	_, dst := testServer(t, Config{})

	id := mustCreate(t, src.URL, CreateSessionRequest{T: 5, G: 3, Alg: "alg2"})
	feedAndStep(t, src.URL, id)
	var exp ExportedSession
	if status := doJSON(t, "POST", src.URL+"/v1/sessions/"+id+"/export", nil, &exp); status != 200 {
		t.Fatalf("export: status %d", status)
	}

	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/import", exp, nil); status != 201 {
		t.Fatalf("first import: status %d", status)
	}
	// A second import of the same ID is a routing-invariant violation.
	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/import", exp, nil); status != 409 {
		t.Fatalf("duplicate import: status %d, want 409", status)
	}

	bad := exp
	bad.ID = "../escape"
	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/import", bad, nil); status != 400 {
		t.Fatalf("hostile id import: status %d, want 400", status)
	}
	bad = exp
	bad.ID = "other"
	bad.Create.Alg = "no-such-engine"
	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/import", bad, nil); status != 400 {
		t.Fatalf("unknown engine import: status %d, want 400", status)
	}
	bad = exp
	bad.ID = "other"
	bad.Commands = []ExportedCommand{{Kind: "create"}}
	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/import", bad, nil); status != 400 {
		t.Fatalf("bad command kind import: status %d, want 400", status)
	}

	if status := doJSON(t, "POST", dst.URL+"/v1/sessions/no-such/export", nil, nil); status != 404 {
		t.Fatalf("export of unknown session: status %d, want 404", status)
	}
}

func TestCreateWithPinnedID(t *testing.T) {
	_, ts := testServer(t, Config{})
	id := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: "g-abc-7"})
	if id != "g-abc-7" {
		t.Fatalf("id = %q", id)
	}
	// Duplicates conflict; hostile IDs are rejected before any state.
	if status := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: "g-abc-7"}, nil); status != 409 {
		t.Fatalf("duplicate pinned id: status %d, want 409", status)
	}
	for _, bad := range []string{"..", "a/b", "x y", string(make([]byte, 65))} {
		if status := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: bad}, nil); status != 400 {
			t.Fatalf("hostile id %q: status %d, want 400", bad, status)
		}
	}
	// A pinned ID matching the server's own numbering advances the
	// counter past it instead of colliding later.
	if got := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: "s-000500"}); got != "s-000500" {
		t.Fatalf("id = %q", got)
	}
	if got := mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 3, Alg: "alg2"}); got != "s-000501" {
		t.Fatalf("numbered id after pin = %q, want s-000501", got)
	}
}

func TestSessionList(t *testing.T) {
	_, ts := testServer(t, Config{})
	var list SessionListResponse
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &list); status != 200 || len(list.Sessions) != 0 {
		t.Fatalf("empty list: status %d, %d sessions", status, len(list.Sessions))
	}
	mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: "b"})
	mustCreate(t, ts.URL, CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: "a"})
	if status := doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &list); status != 200 {
		t.Fatalf("list: status %d", status)
	}
	if len(list.Sessions) != 2 || list.Sessions[0].ID != "a" || list.Sessions[1].ID != "b" {
		t.Fatalf("list = %+v, want [a b]", list.Sessions)
	}
}

func TestReadyzFlipsOnShutdown(t *testing.T) {
	srv, ts := testServer(t, Config{})
	var ready ReadyResponse
	if status := doJSON(t, "GET", ts.URL+"/readyz", nil, &ready); status != 200 || ready.Status != "ok" {
		t.Fatalf("readyz = %d %+v", status, ready)
	}
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if status := doJSON(t, "GET", ts.URL+"/readyz", nil, &ready); status != 503 || ready.Status != "draining" {
		t.Fatalf("readyz after shutdown = %d %+v", status, ready)
	}
	// Liveness keeps answering 200: the process is healthy, just leaving.
	if status := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); status != 200 {
		t.Fatalf("healthz after shutdown = %d", status)
	}
}

// TestExportFullLogPath exercises the non-snapshot ship path by
// exporting from a store-backed session whose WAL holds the full
// history, then corrupting nothing — the wire form must carry commands
// when the engine offers no snapshot. alg1 and alg2 both snapshot, so
// this drives the store path directly through exportedCommands and
// Manager.Import's replay.
func TestExportedCommandConversion(t *testing.T) {
	cmds := []store.Command{
		{Type: store.RecordArrivals, Arrivals: &store.ArrivalsCommand{Jobs: []store.JobRec{{ID: 0, Release: 1, Weight: 2}}}},
		{Type: store.RecordSteps, Steps: &store.StepsCommand{K: 9}},
	}
	wire := exportedCommands(cmds)
	if len(wire) != 2 || wire[0].Kind != "arrivals" || wire[1].Kind != "steps" || wire[1].K != 9 {
		t.Fatalf("wire = %+v", wire)
	}
	back, err := storeCommands(wire)
	if err != nil {
		t.Fatalf("storeCommands: %v", err)
	}
	if len(back) != 2 || back[0].Type != store.RecordArrivals || back[1].Steps.K != 9 {
		t.Fatalf("back = %+v", back)
	}
	if _, err := storeCommands([]ExportedCommand{{Kind: "steps", K: 0}}); err == nil {
		t.Fatal("k=0 steps must be rejected")
	}
	if _, err := storeCommands([]ExportedCommand{{Kind: "arrivals"}}); err == nil {
		t.Fatal("empty arrivals must be rejected")
	}
}
