package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/queue"
	"calibsched/internal/server/metrics"
	"calibsched/internal/trace"
)

// session is one live scheduling session: an online.Engine plus a bounded
// buffer of accepted-but-not-yet-released arrivals, owned by a single
// worker goroutine. All engine and buffer state is touched only by the
// worker, so the scheduling hot path needs no locks; HTTP handlers submit
// closures through do and block for the reply, which serializes every
// operation per session while keeping distinct sessions fully concurrent.
type session struct {
	id        string
	spec      online.EngineSpec
	t, g      int64
	maxBuffer int

	cmds chan func()
	quit chan struct{} // closed by stop(): worker drains and exits
	done chan struct{} // closed by the worker on exit
	stop sync.Once

	// lastActive is the unix-nano time of the last accepted command,
	// read by the manager's idle janitor.
	lastActive atomic.Int64

	// depth is this session's live contribution to the global
	// metrics.QueueDepth gauge. It is the accounting of record for
	// teardown: retire subtracts depth.Swap(0), not a rederived buffer
	// length, so the gauge returns exactly what this session added even
	// if a panic interrupted an operation between buffer mutation and
	// metric update (the staleness bug the janitor used to expose).
	depth atomic.Int64

	// ring buffers the engine's calibration decision events; written by
	// the worker via the engine's sink, read directly (and concurrently)
	// by the HTTP trace handler. trace.Ring synchronizes internally.
	ring *trace.Ring

	// Worker-owned state. Never touched outside the worker goroutine
	// (boot recovery counts: it owns the session until go s.work()).
	eng    online.Engine
	buffer *queue.Heap[core.Job] // future arrivals, ordered by (Release, ID)
	jobs   []core.Job            // every accepted job, indexed by ID
	broken error                 // sticky failure from a recovered panic

	// skipper caches the engine's IdleSkipper capability (nil when the
	// backend can't fast-forward); refreshed whenever eng is replaced
	// (snapshot restore). Worker-owned like eng.
	skipper online.IdleSkipper

	// arrivals is the maturation scratch slice reused across every
	// sub-step of every Step call, so feeding buffered jobs to the
	// engine allocates nothing in steady state. Worker-owned.
	arrivals []core.Job

	// per is the write-ahead persistence hook; nil runs in-memory only,
	// and every persistence call sits behind that one pointer check so
	// the nil path costs nothing on the hot path.
	per *persister
	// replaying is set while boot recovery replays logged commands:
	// appends and traffic counters are skipped (the records are already
	// on disk and were counted in their first life) and admission
	// backpressure is bypassed (accepted is accepted), but state
	// mutations and the queue-depth gauge apply normally.
	replaying bool
}

// newSession builds a session and starts its worker.
func newSession(id string, spec online.EngineSpec, t, g int64, maxBuffer, traceRing int, per *persister, now time.Time) *session {
	s := makeSession(id, spec, t, g, maxBuffer, traceRing, per, now)
	go s.work()
	return s
}

// makeSession builds a session without starting the worker, so boot
// recovery can replay state into it first.
func makeSession(id string, spec online.EngineSpec, t, g int64, maxBuffer, traceRing int, per *persister, now time.Time) *session {
	ring := trace.NewRing(traceRing)
	s := &session{
		id:        id,
		spec:      spec,
		t:         t,
		g:         g,
		maxBuffer: maxBuffer,
		ring:      ring,
		per:       per,
		cmds:      make(chan func()), // unbuffered: a submitted command is always executed
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		eng:       spec.New(t, g, online.WithSink(ring)),
		buffer: queue.New(func(a, b core.Job) bool {
			if a.Release != b.Release {
				return a.Release < b.Release
			}
			return a.ID < b.ID
		}),
	}
	s.skipper, _ = s.eng.(online.IdleSkipper)
	s.lastActive.Store(now.UnixNano())
	return s
}

// noEvents is the shared empty event list for quiet step batches. Its
// capacity is zero, so any append allocates a fresh backing array — the
// shared value itself is never mutated.
var noEvents = make([]StepEventJSON, 0)

// ranPool recycles the per-command completion channels of doTraced. The
// channels are buffered (capacity 1) so completion is signalled by a
// send, which unlike close leaves the channel reusable.
var ranPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// work is the session's worker loop. On quit it finishes every command
// that was already accepted (the channel is unbuffered, so "accepted"
// means a handler is already blocked on the reply) and exits.
func (s *session) work() {
	defer close(s.done)
	for {
		select {
		case fn := <-s.cmds:
			fn()
		case <-s.quit:
			for {
				select {
				case fn := <-s.cmds:
					fn()
				default:
					return
				}
			}
		}
	}
}

// halt asks the worker to exit after draining in-flight work. Safe to
// call multiple times; does not wait (read s.done for that).
func (s *session) halt() {
	s.stop.Do(func() { close(s.quit) })
}

// do runs fn on the worker and waits for it to finish. It fails with a
// 503 once the session has shut down.
func (s *session) do(fn func()) error { return s.doTraced(nil, fn) }

// doTraced is do with latency attribution: when act is recording, the
// gap between handler submit and worker pickup lands as a queue-wait
// phase, stamped on the worker goroutine. The worker writes into act
// directly — safe without locks because the handler blocks on ran until
// the closure finishes, so ownership is handed off, never shared.
func (s *session) doTraced(act *trace.Active, fn func()) error {
	ran := ranPool.Get().(chan struct{})
	var submitted time.Time
	if act != nil {
		submitted = time.Now()
	}
	wrapped := func() {
		defer func() { ran <- struct{}{} }()
		if act != nil {
			act.Phase(trace.PhaseQueueWait, submitted, time.Since(submitted))
		}
		fn()
	}
	select {
	case s.cmds <- wrapped:
		s.lastActive.Store(time.Now().UnixNano())
		<-ran
		ranPool.Put(ran)
		return nil
	case <-s.done:
		// wrapped was never submitted, so nothing will ever send on ran;
		// it is clean for reuse.
		ranPool.Put(ran)
		return &apiError{status: 503, msg: fmt.Sprintf("session %s is shut down", s.id)}
	}
}

// guard wraps a worker-side operation: a broken session stays broken, and
// a panic (e.g. int64 overflow in the engine's exact cost arithmetic) is
// converted into a sticky error instead of killing the daemon.
func (s *session) guard(op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.broken = &apiError{status: 500, msg: fmt.Sprintf("session %s failed during %s: %v", s.id, op, r)}
			err = s.broken
		}
	}()
	if s.broken != nil {
		return s.broken
	}
	return fn()
}

// Arrivals buffers a batch of jobs atomically: every job is validated
// against the session clock, the weight contract, and the buffer bound
// before any is admitted. act, when recording, receives the queue-wait
// and persistence phases (nil for untraced calls).
func (s *session) Arrivals(specs []JobSpec, act *trace.Active) (resp ArrivalsResponse, err error) {
	doErr := s.doTraced(act, func() {
		err = s.guard("arrivals", func() error {
			resp, err = s.admit(specs, act)
			return err
		})
	})
	if doErr != nil {
		return ArrivalsResponse{}, doErr
	}
	return resp, err
}

func (s *session) admit(specs []JobSpec, act *trace.Active) (ArrivalsResponse, error) {
	if len(specs) == 0 {
		return ArrivalsResponse{}, &apiError{status: 400, msg: "arrivals request carries no jobs"}
	}
	now := s.eng.Now()
	for i, js := range specs {
		if js.Release < now {
			return ArrivalsResponse{}, &apiError{status: 409, msg: fmt.Sprintf(
				"job %d released at %d but the session clock is already at %d; arrivals must not time-travel", i, js.Release, now)}
		}
		if js.Weight < 1 {
			return ArrivalsResponse{}, &apiError{status: 400, msg: fmt.Sprintf("job %d has weight %d, want >= 1", i, js.Weight)}
		}
		if s.spec.UnitWeightsOnly && js.Weight != 1 {
			return ArrivalsResponse{}, &apiError{status: 400, msg: fmt.Sprintf(
				"engine %s is unweighted: job %d has weight %d, want 1", s.spec.Name, i, js.Weight)}
		}
	}
	// The buffer bound is admission policy, not state: replay bypasses it
	// so a restart with a smaller -buffer cannot refuse jobs the log
	// already accepted.
	if s.buffer.Len()+len(specs) > s.maxBuffer && !s.replaying {
		metrics.ArrivalsRejected.Add(int64(len(specs)))
		return ArrivalsResponse{}, &apiError{
			status:     429,
			retryAfter: true,
			msg: fmt.Sprintf("arrival buffer full (%d/%d buffered, %d offered); step the session and retry",
				s.buffer.Len(), s.maxBuffer, len(specs)),
		}
	}
	// Write-ahead: the batch lands in the log before it mutates state, so
	// every accepted command is durable per the fsync policy. On append
	// failure nothing was applied — the client sees a 500 and may retry.
	if s.per != nil && !s.replaying {
		if err := s.per.appendArrivals(specs, len(s.jobs), act); err != nil {
			return ArrivalsResponse{}, &apiError{status: 500, msg: fmt.Sprintf("persisting arrivals: %v", err)}
		}
	}
	ids := make([]int, len(specs))
	for i, js := range specs {
		j := core.Job{ID: len(s.jobs), Release: js.Release, Weight: js.Weight}
		s.jobs = append(s.jobs, j)
		s.buffer.Push(j)
		ids[i] = j.ID
	}
	if !s.replaying {
		metrics.ArrivalsAccepted.Add(int64(len(specs)))
	}
	metrics.QueueDepth.Add(int64(len(specs)))
	s.depth.Add(int64(len(specs)))
	if s.per != nil && !s.replaying {
		s.per.maybeSnapshot(s)
	}
	return ArrivalsResponse{
		Accepted: len(specs),
		IDs:      ids,
		Buffered: s.buffer.Len(),
		Capacity: s.maxBuffer,
	}, nil
}

// Step advances the session k time steps, feeding buffered arrivals to
// the engine as they mature. Quiet steps are elided from the event list.
// act, when recording, receives the queue-wait, engine-step, and
// persistence phases (nil for untraced calls).
func (s *session) Step(k, maxBatch int64, act *trace.Active) (resp StepResponse, err error) {
	doErr := s.doTraced(act, func() {
		err = s.guard("step", func() error {
			resp, err = s.advance(k, maxBatch, act)
			return err
		})
	})
	if doErr != nil {
		return StepResponse{}, doErr
	}
	return resp, err
}

func (s *session) advance(k, maxBatch int64, act *trace.Active) (StepResponse, error) {
	if k < 1 {
		return StepResponse{}, &apiError{status: 400, msg: fmt.Sprintf("steps = %d, want >= 1", k)}
	}
	if k > maxBatch {
		return StepResponse{}, &apiError{status: 400, msg: fmt.Sprintf("steps = %d exceeds the per-request limit %d; split the request", k, maxBatch)}
	}
	// Write-ahead: the step command is durable before the engine moves.
	// If the engine panics mid-batch, replay re-runs the same command and
	// panics at the same sub-step — the recovered session is broken in
	// exactly the way the live one was.
	if s.per != nil && !s.replaying {
		if err := s.per.appendSteps(k, act); err != nil {
			return StepResponse{}, &apiError{status: 500, msg: fmt.Sprintf("persisting step: %v", err)}
		}
	}
	resp := StepResponse{Events: noEvents, Stepped: k}
	var stepStart time.Time
	if act != nil {
		stepStart = time.Now()
	}
	for i := int64(0); i < k; {
		now := s.eng.Now()
		// Fast-forward (internal/simul's event-skipping, ported to the
		// serving path): with nothing pending inside the engine, steps up
		// to the next buffered release are pure clock ticks — quiet steps
		// are elided from the event list anyway, so jumping the clock is
		// response- and replay-identical to stepping them one by one.
		if s.skipper != nil && s.eng.Pending() == 0 {
			target := now + (k - i)
			if !s.buffer.Empty() {
				if next := s.buffer.Peek().Release; next < target {
					target = next
				}
			}
			if target > now {
				s.skipper.SkipIdle(target)
				i += target - now
				continue
			}
		}
		s.arrivals = s.arrivals[:0]
		for !s.buffer.Empty() && s.buffer.Peek().Release == now {
			s.arrivals = append(s.arrivals, s.buffer.Pop())
		}
		if len(s.arrivals) > 0 {
			// Settle the gauge before Step: if the engine panics (overflow
			// in its exact arithmetic), the fed jobs are already off the
			// depth gauge instead of lingering as a stale contribution.
			metrics.QueueDepth.Add(-int64(len(s.arrivals)))
			s.depth.Add(-int64(len(s.arrivals)))
		}
		ev := s.eng.Step(s.arrivals)
		if ev.Calibrated || ev.Ran >= 0 {
			e := StepEventJSON{Time: ev.Time, Calibrated: ev.Calibrated, Ran: ev.Ran}
			if ev.Calibrated {
				e.Trigger = ev.Trigger.String()
			}
			resp.Events = append(resp.Events, e)
		}
		i++
	}
	if act != nil {
		// One engine-step phase covers the whole k-step batch, maturation
		// feeding included — that is the unit a client requested.
		act.Phase(trace.PhaseEngineStep, stepStart, time.Since(stepStart))
	}
	if !s.replaying {
		metrics.StepsServed.Add(k)
	}
	if s.per != nil && !s.replaying {
		s.per.maybeSnapshot(s)
	}
	resp.Now = s.eng.Now()
	resp.Pending = s.eng.Pending()
	resp.Buffered = s.buffer.Len()
	resp.Done = s.isDone()
	return resp, nil
}

// isDone reports whether every accepted job has been scheduled (worker
// side). With an empty buffer, done == nothing pending inside the engine.
func (s *session) isDone() bool {
	return s.buffer.Empty() && s.eng.Pending() == 0
}

// Info returns a consistent snapshot of the session's identity and state.
func (s *session) Info() (info SessionInfo, err error) {
	doErr := s.do(func() {
		err = s.guard("info", func() error {
			info = s.infoLocked()
			return nil
		})
	})
	if doErr != nil {
		return SessionInfo{}, doErr
	}
	return info, err
}

func (s *session) infoLocked() SessionInfo {
	return SessionInfo{
		ID:       s.id,
		Alg:      s.spec.Name,
		T:        s.t,
		G:        s.g,
		Now:      s.eng.Now(),
		Pending:  s.eng.Pending(),
		Buffered: s.buffer.Len(),
		Jobs:     len(s.jobs),
	}
}

// Snapshot assembles the schedule built so far with exact cost accounting
// over the assigned jobs. Overflow in the cost sums surfaces as a 500,
// not a panic: the snapshot is a read and must not kill the session.
func (s *session) Snapshot() (resp ScheduleResponse, err error) {
	doErr := s.do(func() {
		err = s.guard("schedule", func() error {
			resp, err = s.snapshot()
			return err
		})
	})
	if doErr != nil {
		return ScheduleResponse{}, doErr
	}
	return resp, err
}

func (s *session) snapshot() (ScheduleResponse, error) {
	sched := s.eng.Schedule(len(s.jobs))
	triggers := s.eng.Triggers()
	resp := ScheduleResponse{
		Session:      s.infoLocked(),
		Calibrations: make([]CalibrationJSON, len(sched.Calendar)),
		Assignments:  make([]AssignmentJSON, len(sched.Assignments)),
	}
	for i, c := range sched.Calendar {
		tr := ""
		if i < len(triggers) {
			tr = triggers[i].String()
		}
		resp.Calibrations[i] = CalibrationJSON{Machine: c.Machine, Start: c.Start, Trigger: tr}
	}
	var flow int64
	for i, a := range sched.Assignments {
		j := s.jobs[i]
		resp.Assignments[i] = AssignmentJSON{
			Job: j.ID, Release: j.Release, Weight: j.Weight,
			Machine: a.Machine, Start: a.Start,
		}
		if a.Start < 0 {
			continue
		}
		resp.Assigned++
		f, ok := core.MulCheck(j.Weight, a.Start+1-j.Release)
		if !ok {
			return ScheduleResponse{}, &apiError{status: 500, msg: fmt.Sprintf("int64 overflow computing flow of job %d", j.ID)}
		}
		if flow, ok = core.AddCheck(flow, f); !ok {
			return ScheduleResponse{}, &apiError{status: 500, msg: "int64 overflow accumulating weighted flow"}
		}
	}
	calCost, ok := core.MulCheck(s.g, int64(len(sched.Calendar)))
	if !ok {
		return ScheduleResponse{}, &apiError{status: 500, msg: "int64 overflow computing calibration cost"}
	}
	total, ok := core.AddCheck(calCost, flow)
	if !ok {
		return ScheduleResponse{}, &apiError{status: 500, msg: "int64 overflow computing total cost"}
	}
	resp.Flow = flow
	resp.TotalCost = total
	resp.Done = resp.Assigned == len(s.jobs) && s.buffer.Empty()
	return resp, nil
}
