package server

import (
	"context"
	"testing"
	"time"

	"calibsched/internal/store"
)

// benchServe measures the per-command serving hot path — one arrival,
// one step per iteration — with persistence configured per st (nil is
// the in-memory baseline). The acceptance bar for the nil-persister fast
// path is zero overhead: BenchmarkServeInMemory must report allocs/op
// identical to the pre-store serving layer, since every persistence call
// sits behind a single nil check.
func benchServe(b *testing.B, st *store.Store) {
	m, err := NewManager(Config{Store: st, SnapshotEvery: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}()
	info, err := m.Create(CreateSessionRequest{Alg: "alg2", T: 8, G: 24})
	if err != nil {
		b.Fatal(err)
	}
	s, err := m.Get(info.ID)
	if err != nil {
		b.Fatal(err)
	}
	job := []JobSpec{{Release: 0, Weight: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job[0].Release = int64(i)
		if _, err := s.Arrivals(job, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Step(1, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeInMemory(b *testing.B) {
	benchServe(b, nil)
}

func benchServeWAL(b *testing.B, policy store.FsyncPolicy) {
	st, err := store.Open(b.TempDir(), store.Options{Fsync: policy})
	if err != nil {
		b.Fatal(err)
	}
	benchServe(b, st)
}

func BenchmarkServeWALNone(b *testing.B)   { benchServeWAL(b, store.FsyncNone) }
func BenchmarkServeWALBatch(b *testing.B)  { benchServeWAL(b, store.FsyncBatch) }
func BenchmarkServeWALAlways(b *testing.B) { benchServeWAL(b, store.FsyncAlways) }
