// Package server is the calibserved serving layer: it hosts many
// independent scheduling sessions, each backed by an online.Engine
// (Algorithm 1 or 2 as an incremental state machine), behind a JSON/HTTP
// API with explicit backpressure and expvar metrics.
//
// Concurrency model: one worker goroutine per session serializes that
// session's operations (the engine is single-threaded state); distinct
// sessions run fully in parallel. The arrival buffer is bounded — a full
// buffer answers 429 with Retry-After rather than queueing unboundedly —
// and sessions idle past the configured TTL are evicted. Shutdown drains
// in-flight steps before the process exits.
//
// DESIGN.md §7 documents the session lifecycle, the backpressure
// contract, and the API schema; cmd/calibserved is the daemon and
// cmd/calibload the matching load generator.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"calibsched/internal/server/metrics"
	"calibsched/internal/solve"
	"calibsched/internal/trace"
)

// apiError is an error with an HTTP mapping. retryAfter marks
// backpressure responses, which carry a Retry-After header so
// well-behaved clients back off.
type apiError struct {
	status     int
	retryAfter bool
	msg        string
}

func (e *apiError) Error() string { return e.msg }

// maxBodyBytes bounds request bodies; an arrivals batch of maximal
// buffer size fits comfortably.
const maxBodyBytes = 8 << 20

// Server is the HTTP front of a Manager. It implements http.Handler.
type Server struct {
	mgr  *Manager
	pool *solve.Pool
	mux  *http.ServeMux
	log  *slog.Logger

	// spans is the node's request-trace store (nil when Config
	// disables recording; every span call site is nil-safe).
	spans *trace.SpanStore

	// ready gates GET /readyz: true from the end of New (boot replay
	// done) until Shutdown begins. The cluster gateway health-checks
	// /readyz, so flipping this false pulls the node out of routing
	// before the drain starts refusing work.
	ready atomic.Bool
}

// New builds a server and its manager from the config. With a persistent
// store configured it errors when the store root cannot be scanned at
// boot; without one it cannot fail.
func New(cfg Config) (*Server, error) {
	mgr, err := NewManager(cfg)
	if err != nil {
		return nil, err
	}
	var spans *trace.SpanStore
	if mgr.cfg.SpanStoreSize > 0 {
		spans = trace.NewSpanStore(mgr.cfg.SpanStoreSize, mgr.cfg.SlowTraceThreshold, "")
		spans.Observer = observePhase
	}
	pool := solve.New(solve.Options{
		Workers:           mgr.cfg.SolveWorkers,
		QueueDepth:        mgr.cfg.SolveQueueDepth,
		CacheSize:         mgr.cfg.SolveCacheSize,
		MaxJobs:           mgr.cfg.SolveMaxJobs,
		OnEvent:           solveEvent,
		Spans:             spans,
		TestHookBeforeRun: mgr.cfg.solveTestHook,
	})
	s := &Server{mgr: mgr, pool: pool, mux: http.NewServeMux(), log: mgr.cfg.Logger, spans: spans}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolveSubmit)
	s.mux.HandleFunc("GET /v1/solve/{id}", s.handleSolveGet)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("POST /v1/sessions/import", s.handleImport)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/arrivals", s.handleArrivals)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	s.mux.HandleFunc("GET /v1/sessions/{id}/schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/sessions/{id}/export", s.handleExport)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /v1/traces/{traceID}", s.handleTraceGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.ready.Store(true)
	return s, nil
}

// Manager exposes the underlying session manager (for shutdown wiring
// and tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Pool exposes the offline-solve pool (for shutdown wiring and tests).
func (s *Server) Pool() *solve.Pool { return s.pool }

// Shutdown drains every session and stops the solve pool; see
// Manager.Shutdown. Readiness drops first — the gateway stops routing
// here before requests start getting drained-away 503s — then the pool
// is closed (running solves finish, queued ones fail fast) so a slow DP
// cannot hold the drain past the caller's deadline budget for sessions.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.pool.Close()
	return s.mgr.Shutdown(ctx)
}

// reqAttrs carries per-request slog attrs that handlers attach while they
// run (session id, steps simulated); ServeHTTP folds them into the final
// access-log record. Handlers run synchronously on the request goroutine,
// so no locking is needed.
type reqAttrs struct{ attrs []slog.Attr }

type reqAttrsKey struct{}

// logAttrs attaches structured attrs to the request's access-log record.
// A no-op for requests that did not pass through ServeHTTP (tests calling
// handlers directly).
func logAttrs(r *http.Request, attrs ...slog.Attr) {
	if ra, ok := r.Context().Value(reqAttrsKey{}).(*reqAttrs); ok {
		ra.attrs = append(ra.attrs, attrs...)
	}
}

// statusWriter records the status code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ra := &reqAttrs{}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	ctx := context.WithValue(r.Context(), reqAttrsKey{}, ra)
	var act *trace.Active
	if s.spans != nil && traceablePath(r.URL.Path) {
		parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
		act = s.spans.StartSpan(trace.PhaseHTTP, parent, map[string]string{
			"method": r.Method,
			"path":   r.URL.Path,
		})
		ctx = trace.WithActive(ctx, act)
		// The response header tells the client (and the stitching
		// gateway) which trace this request landed in, whether the
		// trace was minted here or continued from the request header.
		w.Header().Set("traceparent", trace.FormatTraceparent(act.Context()))
	}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	if act != nil {
		act.SetAttr("status", strconv.Itoa(sw.status))
		act.Finish()
	}
	attrs := append([]slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("latency", time.Since(start)),
	}, ra.attrs...)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.mgr.Create(req)
	if err != nil {
		writeError(w, err)
		return
	}
	logAttrs(r, slog.String("session", info.ID), slog.String("alg", info.Alg))
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	info, err := sess.Info()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleArrivals(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req ArrivalsRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := sess.Arrivals(req.Jobs, trace.ActiveFrom(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	req := StepRequest{Steps: 1}
	if r.ContentLength != 0 {
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		if req.Steps == 0 {
			req.Steps = 1
		}
	}
	act := trace.ActiveFrom(r.Context())
	stop := observeStep(act)
	resp, err := sess.Step(req.Steps, s.mgr.cfg.MaxStepBatch, act)
	stop()
	if err != nil {
		logAttrs(r, slog.String("session", sess.id))
		writeError(w, err)
		return
	}
	logAttrs(r, slog.String("session", sess.id), slog.Int64("steps", resp.Stepped))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := sess.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves the session's decision-event ring. It reads the
// ring directly — not through the worker — so a session busy inside a
// long step batch can still be observed live; trace.Ring synchronizes
// the concurrent worker writes internally.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	logAttrs(r, slog.String("session", sess.id))
	events, emitted, dropped := sess.ring.Snapshot()
	writeJSON(w, http.StatusOK, TraceResponse{
		Session:  sess.id,
		Capacity: sess.ring.Capacity(),
		Emitted:  emitted,
		Dropped:  dropped,
		Events:   events,
	})
}

// handleMetrics renders the expvar registry in Prometheus text
// exposition format (0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncSolveGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Sessions: s.mgr.Len()})
}

// handleReady is the routable-for-new-work probe: 200 while the node
// accepts sessions, 503 once shutdown has begun. (Liveness stays
// /healthz, which answers 200 even while draining — the process is
// healthy, just leaving the pool.) The "booting" phase is covered by
// cmd/calibserved, which serves its own 503 /readyz until WAL replay
// finishes and this server exists.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Status: "ok"})
}

// handleList enumerates live sessions; the gateway uses it to find what
// must migrate during a rebalance.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

// handleExport drains a session and returns its portable state; the
// session stops serving here the moment this succeeds. See
// Manager.Export for the on-disk safety-net semantics.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	exp, err := s.mgr.Export(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	logAttrs(r, slog.String("session", exp.ID))
	writeJSON(w, http.StatusOK, exp)
}

// handleImport accepts a migrated session's state and brings it live.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	var exp ExportedSession
	if err := readJSON(w, r, &exp); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.mgr.Import(&exp)
	if err != nil {
		writeError(w, err)
		return
	}
	logAttrs(r, slog.String("session", info.ID), slog.String("alg", info.Alg))
	writeJSON(w, http.StatusCreated, info)
}

// readJSON decodes a request body strictly: unknown fields and trailing
// garbage are 400s, so schema typos fail loudly instead of silently
// defaulting.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return &apiError{status: 400, msg: fmt.Sprintf("malformed request body: %v", err)}
	}
	if dec.More() {
		return &apiError{status: 400, msg: "trailing data after JSON body"}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do but drop the conn.
		_ = err
	}
}

func writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = &apiError{status: 500, msg: err.Error()}
	}
	if ae.retryAfter {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, ae.status, ErrorResponse{Error: ae.msg})
}

// observeStep starts a step-latency observation; call the returned func
// when the step completes. A traced request pins its trace ID as the
// bucket's exemplar (act nil-safely yields "" for untraced requests).
func observeStep(act *trace.Active) func() {
	start := time.Now()
	return func() { metrics.StepLatency.ObserveTraced(time.Since(start), act.TraceID()) }
}
