package server

import (
	"calibsched/internal/store"
	"calibsched/internal/trace"
)

// JSON request/response schema of the calibserved v1 API. All quantities
// are int64 on the wire, matching the exact integer model of
// internal/core; DESIGN.md §7 documents the endpoint contract.

// CreateSessionRequest creates a scheduling session: POST /v1/sessions.
type CreateSessionRequest struct {
	// T is the calibration length (steps per calibrated interval), >= 1.
	T int64 `json:"t"`
	// G is the per-calibration cost, >= 0.
	G int64 `json:"g"`
	// Alg selects the engine backend; see online.EngineNames.
	Alg string `json:"alg"`
	// ID optionally pins the session id instead of taking a
	// server-numbered one. The cluster gateway (internal/cluster) relies
	// on this: it must choose the id before it can consistent-hash the
	// session onto a node. Letters, digits, '.', '_', and '-' only; an
	// id already in use is a 409.
	ID string `json:"id,omitempty"`
}

// SessionInfo describes a session's identity and live state.
type SessionInfo struct {
	ID  string `json:"id"`
	Alg string `json:"alg"`
	T   int64  `json:"t"`
	G   int64  `json:"g"`
	// Now is the next time step the session will simulate.
	Now int64 `json:"now"`
	// Pending counts jobs inside the engine's queue (released, waiting).
	Pending int `json:"pending"`
	// Buffered counts accepted future arrivals not yet fed to the engine.
	Buffered int `json:"buffered"`
	// Jobs counts every job accepted so far.
	Jobs int `json:"jobs"`
}

// JobSpec is one job in an arrivals request. Release must be >= the
// session's current step; Weight must be >= 1 (exactly 1 for unweighted
// engines).
type JobSpec struct {
	Release int64 `json:"release"`
	Weight  int64 `json:"weight"`
}

// ArrivalsRequest feeds jobs: POST /v1/sessions/{id}/arrivals. The batch
// is atomic: either every job is buffered or none is.
type ArrivalsRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// ArrivalsResponse acknowledges buffered arrivals.
type ArrivalsResponse struct {
	// Accepted is the number of jobs buffered by this request.
	Accepted int `json:"accepted"`
	// IDs are the server-assigned dense job IDs, in request order.
	IDs []int `json:"ids"`
	// Buffered and Capacity describe the arrival buffer after the
	// request; Capacity-Buffered is the headroom before backpressure.
	Buffered int `json:"buffered"`
	Capacity int `json:"capacity"`
}

// StepRequest advances the clock: POST /v1/sessions/{id}/step.
type StepRequest struct {
	// Steps is the number of time steps to simulate, default 1.
	Steps int64 `json:"steps"`
}

// StepEventJSON reports one simulated step. Quiet steps (no calibration,
// nothing ran) are elided from StepResponse.Events; the clock still
// advances.
type StepEventJSON struct {
	Time       int64  `json:"time"`
	Calibrated bool   `json:"calibrated,omitempty"`
	Trigger    string `json:"trigger,omitempty"`
	// Ran is the ID of the job scheduled at this step, or -1.
	Ran int `json:"ran"`
}

// StepResponse reports the steps just simulated and the resulting state.
type StepResponse struct {
	Events []StepEventJSON `json:"events"`
	// Stepped is the number of steps simulated (== request's Steps).
	Stepped int64 `json:"stepped"`
	Now     int64 `json:"now"`
	Pending int   `json:"pending"`
	// Buffered counts future arrivals still waiting to mature.
	Buffered int `json:"buffered"`
	// Done reports that every accepted job has been scheduled and no
	// arrivals are buffered.
	Done bool `json:"done"`
}

// CalibrationJSON is one calendar entry of a schedule snapshot.
type CalibrationJSON struct {
	Machine int    `json:"machine"`
	Start   int64  `json:"start"`
	Trigger string `json:"trigger"`
}

// AssignmentJSON is one job's placement in a schedule snapshot. Start is
// -1 while the job is still waiting.
type AssignmentJSON struct {
	Job     int   `json:"job"`
	Release int64 `json:"release"`
	Weight  int64 `json:"weight"`
	Machine int   `json:"machine"`
	Start   int64 `json:"start"`
}

// ScheduleResponse is the snapshot from GET /v1/sessions/{id}/schedule:
// the schedule built so far plus exact cost accounting over the assigned
// jobs (G * calibrations + weighted flow, computed with the
// checked-arithmetic helpers of internal/core).
type ScheduleResponse struct {
	Session      SessionInfo       `json:"session"`
	Calibrations []CalibrationJSON `json:"calibrations"`
	Assignments  []AssignmentJSON  `json:"assignments"`
	// Assigned counts jobs with a start time.
	Assigned int `json:"assigned"`
	// Flow is the total weighted flow of the assigned jobs.
	Flow int64 `json:"flow"`
	// TotalCost is G*len(Calibrations) + Flow.
	TotalCost int64 `json:"total_cost"`
	Done      bool  `json:"done"`
}

// TraceResponse is the body of GET /v1/sessions/{id}/trace: the most
// recent calibration decision events from the session's bounded ring
// buffer, oldest first. Emitted counts every event the engine ever
// produced; Dropped counts those evicted once the ring filled, so
// Emitted - Dropped == len(Events).
type TraceResponse struct {
	Session  string                `json:"session"`
	Capacity int                   `json:"capacity"`
	Emitted  int64                 `json:"emitted"`
	Dropped  int64                 `json:"dropped"`
	Events   []trace.DecisionEvent `json:"events"`
}

// TraceListResponse is the body of GET /v1/traces: the span store's
// index (oldest trace first) plus its retention counters.
type TraceListResponse struct {
	Traces []trace.TraceSummary `json:"traces"`
	Stats  trace.StoreStats     `json:"stats"`
}

// TraceGetResponse is the body of GET /v1/traces/{traceID}: every span
// this node recorded for the trace, in recording order. The gateway
// serves the same shape with the fleet's spans stitched together.
type TraceGetResponse struct {
	TraceID string       `json:"trace_id"`
	Spans   []trace.Span `json:"spans"`
}

// SolveRequest submits an exact offline solve: POST /v1/solve. The job
// set is canonicalized to the paper's normal form (sorted, distinct
// release times) before solving, so equivalent submissions share one
// cache entry.
type SolveRequest struct {
	// T is the calibration length, >= 1.
	T int64 `json:"t"`
	// Kind selects the solver: "flow" (optimal flow under budget K),
	// "sweep" (optimal flow for every budget 0..K), or "total"
	// (minimum flow + G per calibration).
	Kind string `json:"kind"`
	// K is the calibration budget ("flow") or largest sweep budget
	// ("sweep").
	K int `json:"k,omitempty"`
	// G is the per-calibration cost ("total").
	G    int64     `json:"g,omitempty"`
	Jobs []JobSpec `json:"jobs"`
}

// SolveSubmitResponse acknowledges an accepted solve: 202 with the
// handle to poll at GET /v1/solve/{id}. Cache hits come back already
// done.
type SolveSubmitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
}

// SolveStatusResponse is the body of GET /v1/solve/{id}. Result fields
// are populated only in state "done", and only those matching the
// request kind: Flow for "flow", Flows for "sweep", Total/BestK for
// "total"; Calibrations and Assignments carry the optimal schedule for
// "flow" and "total".
type SolveStatusResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Kind     string `json:"kind,omitempty"`
	Error    string `json:"error,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	// Shared marks handles that attached to an identical in-flight solve.
	Shared       bool              `json:"shared"`
	Flow         *int64            `json:"flow,omitempty"`
	Flows        []int64           `json:"flows,omitempty"`
	Total        *int64            `json:"total,omitempty"`
	BestK        *int              `json:"best_k,omitempty"`
	Calibrations []CalibrationJSON `json:"calibrations,omitempty"`
	Assignments  []AssignmentJSON  `json:"assignments,omitempty"`
}

// SessionListResponse is the GET /v1/sessions body: every live session,
// sorted by ID. The cluster gateway uses it to enumerate what must move
// during a rebalance.
type SessionListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// ExportedSession is a session's complete durable state in transit
// between nodes: the body of a successful POST /v1/sessions/{id}/export
// and of the matching POST /v1/sessions/import. Either Snapshot carries
// the engine state and Commands the WAL tail logged after it, or
// Snapshot is nil and Commands is the full command stream from birth
// (engines without snapshot support). Replaying Commands on top of
// Snapshot on the importing node reproduces the session byte-exactly —
// the same determinism crash recovery relies on.
type ExportedSession struct {
	ID       string              `json:"id"`
	Create   store.CreateCommand `json:"create"`
	Snapshot *store.Snapshot     `json:"snapshot,omitempty"`
	Commands []ExportedCommand   `json:"commands,omitempty"`
}

// ExportedCommand is one logged command of an exported session's replay
// tail. Kind is "arrivals" (Jobs set) or "steps" (K set); sequence
// numbers are not shipped — only relative order matters, and the
// importing store renumbers from scratch.
type ExportedCommand struct {
	Kind string         `json:"kind"`
	Jobs []store.JobRec `json:"jobs,omitempty"`
	K    int64          `json:"k,omitempty"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
}

// ReadyResponse is the GET /readyz body. Status is "ok" when the node
// accepts new sessions and imports, "draining" once shutdown has begun,
// and "booting" while the daemon is still replaying WALs (served by the
// daemon's boot handler before the real server exists). Health checkers
// route on the status code — 200 vs 503 — not the body.
type ReadyResponse struct {
	Status string `json:"status"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
