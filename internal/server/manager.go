package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"calibsched/internal/online"
	"calibsched/internal/server/metrics"
	"calibsched/internal/store"
)

// Config tunes the serving layer. The zero value is usable: every field
// falls back to the listed default.
type Config struct {
	// MaxSessions bounds concurrently live sessions (default 1024).
	// Session creation beyond the bound is refused with a 429.
	MaxSessions int
	// MaxBuffer bounds each session's arrival buffer (default 4096).
	// Arrivals beyond the bound are refused with a 429 + Retry-After.
	MaxBuffer int
	// MaxStepBatch bounds the steps one request may simulate (default
	// 100000), keeping response sizes and worker occupancy bounded.
	MaxStepBatch int64
	// IdleTTL evicts sessions with no traffic for this long (default
	// 10m); zero or negative disables eviction.
	IdleTTL time.Duration
	// JanitorInterval overrides the eviction sweep cadence (default
	// IdleTTL/4, clamped to [10ms, 30s]); tests shorten it.
	JanitorInterval time.Duration
	// TraceRing bounds each session's decision-event ring buffer served
	// at GET /v1/sessions/{id}/trace (default 1024); when full, the
	// oldest events are dropped and the drop count is reported.
	TraceRing int
	// SpanStoreSize bounds the node's request-trace store (in traces)
	// served at GET /v1/traces (default 512). Negative disables span
	// recording entirely: every /v1 request then runs the nil-recorder
	// fast path.
	SpanStoreSize int
	// SlowTraceThreshold tail-retains traces containing a span at least
	// this slow — they survive FIFO eviction from the span store until
	// only retained traces remain. Zero disables retention (pure FIFO).
	SlowTraceThreshold time.Duration
	// Logger receives one structured record per request (method, path,
	// status, latency, plus handler-attached attrs such as the session
	// id). Default: discard.
	Logger *slog.Logger
	// Store enables durable session persistence: each session gets a
	// write-ahead log + snapshot directory under the store root, and the
	// manager replays everything on disk at boot before accepting
	// traffic. Default nil: sessions are in-memory only.
	Store *store.Store
	// SnapshotEvery is the number of WAL records appended between
	// snapshots (default 256); each snapshot truncates the log behind it,
	// bounding both recovery replay time and disk growth.
	SnapshotEvery int
	// SolveWorkers is the offline-solve pool's concurrent DP runs
	// (default GOMAXPROCS); SolveQueueDepth bounds queued solves before
	// POST /v1/solve answers 429 (default 64); SolveCacheSize is the
	// LRU result-cache capacity in entries (default 128, negative
	// disables); SolveMaxJobs rejects larger instances with a 400
	// (default offline.MaxParallelJobs). The pool itself applies these
	// defaults — see solve.Options.
	SolveWorkers    int
	SolveQueueDepth int
	SolveCacheSize  int
	SolveMaxJobs    int

	// solveTestHook is forwarded to the pool's TestHookBeforeRun so
	// package-local tests can hold solves open; unexported on purpose.
	solveTestHook func(key string)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	if c.MaxBuffer == 0 {
		c.MaxBuffer = 4096
	}
	if c.MaxStepBatch == 0 {
		c.MaxStepBatch = 100_000
	}
	if c.TraceRing == 0 {
		c.TraceRing = 1024
	}
	if c.SpanStoreSize == 0 {
		c.SpanStoreSize = 512
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.JanitorInterval == 0 && c.IdleTTL > 0 {
		c.JanitorInterval = c.IdleTTL / 4
		if c.JanitorInterval < 10*time.Millisecond {
			c.JanitorInterval = 10 * time.Millisecond
		}
		if c.JanitorInterval > 30*time.Second {
			c.JanitorInterval = 30 * time.Second
		}
	}
	return c
}

// Manager owns the session table: creation, lookup, idle eviction, and
// draining shutdown. It is safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64
	closed   bool

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewManager starts a manager (and its idle janitor, when IdleTTL > 0).
// With a Store configured, every recoverable on-disk session is replayed
// and live before NewManager returns; it errors only when the store root
// itself cannot be scanned (individual bad sessions degrade to absent).
func NewManager(cfg Config) (*Manager, error) {
	m := &Manager{
		cfg:         cfg.withDefaults(),
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if m.cfg.Store != nil {
		if err := m.recoverSessions(); err != nil {
			return nil, err
		}
		// Group-commit visibility: one observer call per committed group,
		// before any session traffic can race the install.
		if c := m.cfg.Store.Committer(); c != nil {
			c.SetObserver(func(records, logs int) {
				metrics.GroupCommits.Add(1)
				metrics.GroupCommitRecords.Add(int64(records))
			})
		}
	}
	if m.cfg.IdleTTL > 0 {
		go m.janitor()
	} else {
		close(m.janitorDone)
	}
	return m, nil
}

// Create builds a new session for the request.
func (m *Manager) Create(req CreateSessionRequest) (SessionInfo, error) {
	spec, ok := online.LookupEngine(req.Alg)
	if !ok {
		return SessionInfo{}, &apiError{status: 400, msg: fmt.Sprintf(
			"unknown engine %q (have %v)", req.Alg, online.EngineNames())}
	}
	// Validate T and G through the same gate the engines use, without
	// constructing a throwaway engine.
	if _, err := online.NewEngine(req.Alg, req.T, req.G); err != nil {
		return SessionInfo{}, &apiError{status: 400, msg: err.Error()}
	}
	if req.ID != "" {
		if err := validateSessionID(req.ID); err != nil {
			return SessionInfo{}, err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return SessionInfo{}, &apiError{status: 503, msg: "server is shutting down"}
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		return SessionInfo{}, &apiError{status: 429, retryAfter: true, msg: fmt.Sprintf(
			"session limit reached (%d live); delete or let idle sessions expire and retry", len(m.sessions))}
	}
	var id string
	if req.ID != "" {
		// Client-pinned ID (the cluster gateway chooses IDs so it can hash
		// them onto nodes before creating). A collision with anything — a
		// live session, or an on-disk directory from a failed recovery or
		// an in-flight migration — is a 409, never a silent reuse.
		id = req.ID
		if _, dup := m.sessions[id]; dup {
			return SessionInfo{}, &apiError{status: 409, msg: fmt.Sprintf("session %q already exists", id)}
		}
		if m.cfg.Store != nil {
			exists, err := m.cfg.Store.Exists(id)
			if err != nil {
				return SessionInfo{}, &apiError{status: 500, msg: fmt.Sprintf("probing session storage: %v", err)}
			}
			if exists {
				return SessionInfo{}, &apiError{status: 409, msg: fmt.Sprintf(
					"session %q has on-disk state on this node", id)}
			}
		}
		bumpNextID(&m.nextID, id)
	} else {
		m.nextID++
		id = fmt.Sprintf("s-%06d", m.nextID)
	}
	var per *persister
	if m.cfg.Store != nil {
		// The directory, the log, and the create record exist before the
		// session does; a crash right after this lands a recoverable (if
		// empty) session, never an untracked one. Creation failure burns
		// the ID, which is harmless.
		log, err := m.cfg.Store.Create(id)
		if err != nil {
			return SessionInfo{}, &apiError{status: 500, msg: fmt.Sprintf("creating session storage: %v", err)}
		}
		n, err := log.AppendCreate(store.CreateCommand{Alg: spec.Name, T: req.T, G: req.G})
		if err != nil {
			if cErr := log.Close(); cErr != nil {
				m.cfg.Logger.Warn("closing wal of half-created session", "session", id, "err", cErr)
			}
			if rmErr := m.cfg.Store.Remove(id); rmErr != nil {
				m.cfg.Logger.Warn("removing half-created session directory", "session", id, "err", rmErr)
			}
			return SessionInfo{}, &apiError{status: 500, msg: fmt.Sprintf("persisting session create: %v", err)}
		}
		metrics.WALAppends.Add(1)
		metrics.WALBytes.Add(int64(n))
		per = newPersister(log, m.cfg.SnapshotEvery, 0, m.cfg.Logger, id)
	}
	s := newSession(id, spec, req.T, req.G, m.cfg.MaxBuffer, m.cfg.TraceRing, per, time.Now())
	m.sessions[id] = s
	metrics.SessionsCreated.Add(1)
	metrics.SessionsActive.Add(1)
	return SessionInfo{ID: id, Alg: spec.Name, T: req.T, G: req.G}, nil
}

// Get looks up a live session.
func (m *Manager) Get(id string) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, &apiError{status: 404, msg: fmt.Sprintf("no session %q", id)}
	}
	return s, nil
}

// Delete stops a session and removes it from the table, waiting for its
// worker to drain. An ID that is not live but has a directory on disk —
// the settled source copy of a migrated-away session, or an
// unrecoverable directory kept for inspection — is purged from disk, so
// DELETE doubles as the cluster's post-migration cleanup verb.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.mu.Unlock()
		m.retire(s, diskDestroy)
		return nil
	}
	// Purge under the same lock as the liveness check so a concurrent
	// Create or Import of the same ID cannot land between the check and
	// the removal and lose its fresh directory.
	defer m.mu.Unlock()
	if m.cfg.Store != nil {
		exists, err := m.cfg.Store.Exists(id)
		if err == nil && exists {
			if err := m.cfg.Store.Remove(id); err != nil {
				return &apiError{status: 500, msg: fmt.Sprintf("removing session directory: %v", err)}
			}
			return nil
		}
	}
	return &apiError{status: 404, msg: fmt.Sprintf("no session %q", id)}
}

// diskFate is what a retiring session leaves on disk.
type diskFate int

const (
	// diskSettle writes a final snapshot and closes the log; the session
	// survives the next boot. Graceful shutdown.
	diskSettle diskFate = iota
	// diskDestroy closes the log and removes the session directory; the
	// session is gone for good. DELETE and idle eviction, which would
	// otherwise leak orphaned directories that resurrect at every boot.
	diskDestroy
)

// retire shuts a session's worker down, releases its buffered-arrival
// contribution to the queue-depth gauge, and applies fate to its on-disk
// state. The subtraction uses the session's own depth counter, not a
// rederived buffer length: a session broken by an engine panic can hold
// jobs the buffer no longer reflects, and Swap(0) returns exactly what
// this session added to the gauge.
func (m *Manager) retire(s *session, fate diskFate) {
	s.halt()
	<-s.done
	metrics.QueueDepth.Add(-s.depth.Swap(0))
	metrics.SessionsActive.Add(-1)
	if s.per == nil {
		return
	}
	switch fate {
	case diskSettle:
		s.per.settle(s)
	case diskDestroy:
		if err := s.per.log.Close(); err != nil {
			m.cfg.Logger.Warn("closing wal before removal", "session", s.id, "err", err)
		}
		if err := m.cfg.Store.Remove(s.id); err != nil {
			m.cfg.Logger.Warn("removing session directory", "session", s.id, "err", err)
		}
	}
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// janitor periodically evicts sessions idle longer than IdleTTL.
func (m *Manager) janitor() {
	defer close(m.janitorDone)
	ticker := time.NewTicker(m.cfg.JanitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			m.evictIdle(time.Now())
		}
	}
}

// evictIdle removes every session whose last activity is older than
// IdleTTL as of now.
func (m *Manager) evictIdle(now time.Time) {
	cutoff := now.Add(-m.cfg.IdleTTL).UnixNano()
	var idle []*session
	m.mu.Lock()
	for id, s := range m.sessions {
		if s.lastActive.Load() < cutoff {
			delete(m.sessions, id)
			idle = append(idle, s)
		}
	}
	m.mu.Unlock()
	for _, s := range idle {
		m.retire(s, diskDestroy)
		metrics.SessionsEvicted.Add(1)
	}
}

// Shutdown drains the manager: new work is refused with a 503, every
// session worker finishes its in-flight command, and the janitor stops.
// It returns ctx.Err if the context expires before the drain completes.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyClosed := m.closed
	m.closed = true
	ss := make([]*session, 0, len(m.sessions))
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ss = append(ss, m.sessions[id])
		delete(m.sessions, id)
	}
	m.mu.Unlock()

	if !alreadyClosed {
		close(m.janitorStop)
	}
	<-m.janitorDone

	for _, s := range ss {
		s.halt()
	}
	for _, s := range ss {
		select {
		case <-s.done:
			metrics.QueueDepth.Add(-s.depth.Swap(0))
			metrics.SessionsActive.Add(-1)
			// Graceful shutdown settles persistence — final snapshot plus
			// clean close — so the next boot replays nothing.
			if s.per != nil {
				s.per.settle(s)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
