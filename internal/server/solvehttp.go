package server

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"

	"calibsched/internal/core"
	"calibsched/internal/server/metrics"
	"calibsched/internal/solve"
	"calibsched/internal/trace"
)

// Offline-solve endpoints: POST /v1/solve submits an exact DP request to
// the bounded solve pool and answers 202 with a handle; GET /v1/solve/{id}
// polls it. Backpressure mirrors the session endpoints — a full pool
// queue is a 429 with Retry-After, never an unbounded queue. DESIGN.md
// §10 documents the pool, cache, and dedup architecture.

// solveEvent fans pool events into the expvar metrics plane.
func solveEvent(ev solve.Event) {
	switch ev {
	case solve.EvSubmitted:
		metrics.SolveSubmitted.Add(1)
	case solve.EvRejected:
		metrics.SolveRejected.Add(1)
	case solve.EvCacheHit:
		metrics.SolveCacheHits.Add(1)
	case solve.EvCacheMiss:
		metrics.SolveCacheMisses.Add(1)
	case solve.EvCacheEvicted:
		metrics.SolveCacheEvictions.Add(1)
	case solve.EvDedupShared:
		metrics.SolveDedupShared.Add(1)
	case solve.EvRun:
		metrics.SolveRuns.Add(1)
	case solve.EvCompleted:
		metrics.SolveCompleted.Add(1)
	case solve.EvFailed:
		metrics.SolveFailed.Add(1)
	}
}

// syncSolveGauges refreshes the point-in-time pool gauges. Called from
// the solve handlers and the metrics scrape so readings are never staler
// than the last request.
func (s *Server) syncSolveGauges() {
	st := s.pool.Stats()
	metrics.SolveQueueDepth.Set(int64(st.QueueDepth))
	metrics.SolveRunning.Set(int64(st.Running))
	metrics.SolveCacheEntries.Set(int64(st.CacheLen))
}

func (s *Server) handleSolveSubmit(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := readJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	releases := make([]int64, len(req.Jobs))
	weights := make([]int64, len(req.Jobs))
	for i, j := range req.Jobs {
		releases[i] = j.Release
		weights[i] = j.Weight
	}
	in, err := core.NewInstance(1, req.T, releases, weights)
	if err != nil {
		writeError(w, &apiError{status: 400, msg: err.Error()})
		return
	}
	id, err := s.pool.Submit(solve.Request{
		Instance: in.Canonicalize(),
		Kind:     solve.Kind(req.Kind),
		K:        req.K,
		G:        req.G,
		Span:     trace.ActiveFrom(r.Context()).Context(),
	})
	if err != nil {
		writeError(w, solveErr(err))
		return
	}
	st, err := s.pool.Get(id)
	if err != nil {
		writeError(w, solveErr(err))
		return
	}
	s.syncSolveGauges()
	logAttrs(r, slog.String("solve", id), slog.String("kind", req.Kind))
	writeJSON(w, http.StatusAccepted, SolveSubmitResponse{
		ID:       st.ID,
		State:    string(st.State),
		CacheHit: st.CacheHit,
	})
}

func (s *Server) handleSolveGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.pool.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, solveErr(err))
		return
	}
	s.syncSolveGauges()
	writeJSON(w, http.StatusOK, solveStatusJSON(st))
}

// solveErr maps pool errors onto the API error contract.
func solveErr(err error) error {
	switch {
	case errors.Is(err, solve.ErrQueueFull):
		return &apiError{status: 429, retryAfter: true, msg: fmt.Sprintf(
			"solve queue full: %v; retry later", err)}
	case errors.Is(err, solve.ErrInvalid):
		return &apiError{status: 400, msg: err.Error()}
	case errors.Is(err, solve.ErrUnknownHandle):
		return &apiError{status: 404, msg: err.Error()}
	case errors.Is(err, solve.ErrClosed):
		return &apiError{status: 503, msg: "server is shutting down"}
	default:
		return err
	}
}

// solveStatusJSON renders a pool status for the wire.
func solveStatusJSON(st solve.Status) SolveStatusResponse {
	resp := SolveStatusResponse{
		ID:       st.ID,
		State:    string(st.State),
		Error:    st.Err,
		CacheHit: st.CacheHit,
		Shared:   st.Shared,
	}
	res := st.Result
	if res == nil {
		return resp
	}
	resp.Kind = string(res.Kind)
	switch res.Kind {
	case solve.KindFlow:
		flow := res.Flow
		resp.Flow = &flow
	case solve.KindSweep:
		resp.Flows = res.Flows
	case solve.KindTotalCost:
		total, bestK := res.Total, res.BestK
		resp.Total = &total
		resp.BestK = &bestK
	}
	if res.Schedule == nil || res.Instance == nil {
		return resp
	}
	for _, c := range res.Schedule.Calendar.Sorted() {
		resp.Calibrations = append(resp.Calibrations, CalibrationJSON{
			Machine: c.Machine,
			Start:   c.Start,
			Trigger: "offline",
		})
	}
	for _, a := range res.Schedule.Assignments {
		job := res.Instance.Jobs[a.Job]
		resp.Assignments = append(resp.Assignments, AssignmentJSON{
			Job:     a.Job,
			Release: job.Release,
			Weight:  job.Weight,
			Machine: a.Machine,
			Start:   a.Start,
		})
	}
	return resp
}
