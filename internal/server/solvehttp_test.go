package server

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/offline"
)

// pollSolve polls GET /v1/solve/{id} until the handle is terminal.
func pollSolve(t *testing.T, base, id string) SolveStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st SolveStatusResponse
		if status := doJSON(t, "GET", base+"/v1/solve/"+id, nil, &st); status != 200 {
			t.Fatalf("poll %s: status %d", id, status)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("solve %s stuck in state %q", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSolveEndToEnd drives every request kind through the HTTP API and
// checks the answers against the sequential offline solvers on the same
// canonical instance — the served-vs-batch differential for /v1/solve.
func TestSolveEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{})
	jobs := []JobSpec{
		{Release: 0, Weight: 3}, {Release: 2, Weight: 1},
		{Release: 5, Weight: 4}, {Release: 9, Weight: 2},
	}
	in := core.MustInstance(1, 4,
		[]int64{0, 2, 5, 9}, []int64{3, 1, 4, 2}).Canonicalize()

	// kind=total
	var sub SolveSubmitResponse
	status := doJSON(t, "POST", ts.URL+"/v1/solve",
		SolveRequest{T: 4, Kind: "total", G: 6, Jobs: jobs}, &sub)
	if status != 202 || sub.ID == "" {
		t.Fatalf("submit total: status %d resp %+v", status, sub)
	}
	st := pollSolve(t, ts.URL, sub.ID)
	wantTotal, wantK, wantSched, err := offline.OptimalTotalCost(in, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Total == nil || *st.Total != wantTotal ||
		st.BestK == nil || *st.BestK != wantK {
		t.Fatalf("total solve: %+v, want total %d bestK %d", st, wantTotal, wantK)
	}
	if len(st.Calibrations) != len(wantSched.Calendar) ||
		len(st.Assignments) != len(wantSched.Assignments) {
		t.Fatalf("schedule shape: %d cals / %d assignments, want %d / %d",
			len(st.Calibrations), len(st.Assignments),
			len(wantSched.Calendar), len(wantSched.Assignments))
	}
	for i, a := range st.Assignments {
		want := wantSched.Assignments[i]
		if a.Job != want.Job || a.Start != want.Start || a.Machine != want.Machine {
			t.Fatalf("assignment %d: %+v != %+v", i, a, want)
		}
	}

	// kind=sweep
	status = doJSON(t, "POST", ts.URL+"/v1/solve",
		SolveRequest{T: 4, Kind: "sweep", K: 4, Jobs: jobs}, &sub)
	if status != 202 {
		t.Fatalf("submit sweep: status %d", status)
	}
	st = pollSolve(t, ts.URL, sub.ID)
	wantFlows, err := offline.BudgetSweep(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || !reflect.DeepEqual(st.Flows, wantFlows) {
		t.Fatalf("sweep solve: %+v, want flows %v", st, wantFlows)
	}

	// kind=flow
	status = doJSON(t, "POST", ts.URL+"/v1/solve",
		SolveRequest{T: 4, Kind: "flow", K: 2, Jobs: jobs}, &sub)
	if status != 202 {
		t.Fatalf("submit flow: status %d", status)
	}
	st = pollSolve(t, ts.URL, sub.ID)
	wantFlow, err := offline.OptimalFlow(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Flow == nil || *st.Flow != wantFlow.Flow {
		t.Fatalf("flow solve: %+v, want flow %d", st, wantFlow.Flow)
	}
}

// TestSolveCacheHitHTTP resubmits an identical request after completion
// and expects it to come back already done, flagged as a cache hit.
func TestSolveCacheHitHTTP(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := SolveRequest{T: 3, Kind: "total", G: 4, Jobs: []JobSpec{
		{Release: 0, Weight: 2}, {Release: 3, Weight: 1}, {Release: 7, Weight: 3},
	}}
	var first SolveSubmitResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/solve", req, &first); status != 202 {
		t.Fatalf("first submit: status %d", status)
	}
	warm := pollSolve(t, ts.URL, first.ID)
	if warm.CacheHit {
		t.Fatalf("first solve already a cache hit: %+v", warm)
	}

	var second SolveSubmitResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/solve", req, &second); status != 202 {
		t.Fatalf("second submit: status %d", status)
	}
	if !second.CacheHit || second.State != "done" {
		t.Fatalf("second submit not served from cache: %+v", second)
	}
	hit := pollSolve(t, ts.URL, second.ID)
	if !hit.CacheHit || hit.Total == nil || *hit.Total != *warm.Total {
		t.Fatalf("cached status: %+v, want total %d", hit, *warm.Total)
	}
	// Job order must not matter: the canonical instance hash is over the
	// sorted normal form.
	perm := SolveRequest{T: 3, Kind: "total", G: 4, Jobs: []JobSpec{
		{Release: 7, Weight: 3}, {Release: 0, Weight: 2}, {Release: 3, Weight: 1},
	}}
	var third SolveSubmitResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/solve", perm, &third); status != 202 {
		t.Fatalf("permuted submit: status %d", status)
	}
	if !third.CacheHit {
		t.Fatalf("permuted job order missed the cache: %+v", third)
	}
}

// TestSolveBackpressure fills the depth-1 solve queue behind a held-open
// worker and expects the spillover submit to get 429 + Retry-After.
func TestSolveBackpressure(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	_, ts := testServer(t, Config{
		SolveWorkers:    1,
		SolveQueueDepth: 1,
		solveTestHook: func(string) {
			once.Do(func() { close(started) })
			<-gate
		},
	})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	reqG := func(g int64) SolveRequest {
		return SolveRequest{T: 3, Kind: "total", G: g, Jobs: []JobSpec{
			{Release: 0, Weight: 1}, {Release: 4, Weight: 2},
		}}
	}
	var sub SolveSubmitResponse
	if status := doJSON(t, "POST", ts.URL+"/v1/solve", reqG(1), &sub); status != 202 {
		t.Fatalf("busy submit: status %d", status)
	}
	<-started
	if status := doJSON(t, "POST", ts.URL+"/v1/solve", reqG(2), &sub); status != 202 {
		t.Fatalf("queued submit: status %d", status)
	}
	var errResp ErrorResponse
	status, hdr := doJSONHeaders(t, "POST", ts.URL+"/v1/solve", reqG(3), &errResp)
	if status != 429 {
		t.Fatalf("overflow submit: status %d, body %+v", status, errResp)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	close(gate)
}

func TestSolveValidationAndUnknownHandle(t *testing.T) {
	_, ts := testServer(t, Config{})
	var errResp ErrorResponse
	cases := []SolveRequest{
		{T: 3, Kind: "nope", Jobs: []JobSpec{{Release: 0, Weight: 1}}},
		{T: 0, Kind: "flow", K: 1, Jobs: []JobSpec{{Release: 0, Weight: 1}}},
		{T: 3, Kind: "flow", K: -1, Jobs: []JobSpec{{Release: 0, Weight: 1}}},
		{T: 3, Kind: "total", G: -2, Jobs: []JobSpec{{Release: 0, Weight: 1}}},
		{T: 3, Kind: "flow", K: 1, Jobs: []JobSpec{{Release: -1, Weight: 1}}},
		{T: 3, Kind: "flow", K: 1, Jobs: []JobSpec{{Release: 0, Weight: 0}}},
	}
	for i, req := range cases {
		if status := doJSON(t, "POST", ts.URL+"/v1/solve", req, &errResp); status != 400 {
			t.Errorf("case %d: status %d (%+v), want 400", i, status, errResp)
		}
	}
	if status := doJSON(t, "GET", ts.URL+"/v1/solve/solve-424242", nil, &errResp); status != 404 {
		t.Errorf("unknown handle: status %d, want 404", status)
	}
}

// TestSolveMetricsExposed asserts the pool counters and gauges surface
// in the Prometheus exposition after traffic. The expvar registry is
// process-global, so only presence and monotonicity are checked, not
// absolute values.
func TestSolveMetricsExposed(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := SolveRequest{T: 3, Kind: "sweep", K: 3, Jobs: []JobSpec{
		{Release: 0, Weight: 1}, {Release: 2, Weight: 2}, {Release: 8, Weight: 1},
	}}
	var sub SolveSubmitResponse
	for i := 0; i < 2; i++ { // second submit is a cache hit
		if status := doJSON(t, "POST", ts.URL+"/v1/solve", req, &sub); status != 202 {
			t.Fatalf("submit %d: status %d", i, status)
		}
		pollSolve(t, ts.URL, sub.ID)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE calibserved_solve_submitted counter",
		"# TYPE calibserved_solve_cache_hits counter",
		"# TYPE calibserved_solve_cache_misses counter",
		"# TYPE calibserved_solve_dedup_shared counter",
		"# TYPE calibserved_solve_runs counter",
		"# TYPE calibserved_solve_queue_depth gauge",
		"# TYPE calibserved_solve_running gauge",
		"# TYPE calibserved_solve_cache_entries gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
