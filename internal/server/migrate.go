package server

import (
	"fmt"
	"time"

	"calibsched/internal/online"
	"calibsched/internal/server/metrics"
	"calibsched/internal/store"
)

// Live session migration, the server-side half of the cluster plane
// (DESIGN.md §13). Export drains a session's worker and packages its
// durable state — snapshot plus WAL tail, or the full command stream —
// for shipment; Import replays shipped state into a live session on the
// receiving node. Determinism does the heavy lifting: replay here is the
// same code path as boot crash recovery, so a migrated session is
// byte-identical to one that never moved.

// Export removes the session from the table, drains its worker, and
// returns its complete durable state. The on-disk directory (when a
// store is configured) is settled but NOT removed: until the importing
// node has durably accepted the state, the source copy is the only one,
// and the gateway purges it with a DELETE only after the import
// succeeds. A crash mid-migration therefore resurrects the session here
// at next boot rather than losing it (the failure matrix in DESIGN.md
// §13 walks every interleaving).
func (m *Manager) Export(id string) (*ExportedSession, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, &apiError{status: 404, msg: fmt.Sprintf("no session %q", id)}
	}

	// Preflight on the live worker, before the session is pulled from
	// serving: refusing here costs nothing, whereas a failure after the
	// worker has drained can only be repaired by replaying from disk (and
	// not at all for in-memory sessions).
	var pfErr error
	doErr := s.do(func() {
		switch {
		case s.broken != nil:
			pfErr = &apiError{status: 409, msg: fmt.Sprintf(
				"session %s is broken (%v); a broken session cannot be exported", id, s.broken)}
		case !snapshotCapable(s) && s.per == nil:
			pfErr = &apiError{status: 409, msg: fmt.Sprintf(
				"session %s uses engine %s, which does not snapshot, and the node runs without a store: no durable history exists to ship", id, s.spec.Name)}
		}
	})
	if doErr != nil {
		return nil, doErr
	}
	if pfErr != nil {
		return nil, pfErr
	}

	// Remove from the table only if it is still the same session — a
	// concurrent Delete+Create, eviction, or competing export may have
	// swapped it out while the preflight ran.
	m.mu.Lock()
	cur, ok := m.sessions[id]
	if !ok || cur != s {
		m.mu.Unlock()
		return nil, &apiError{status: 409, msg: fmt.Sprintf(
			"session %q changed hands during export; retry", id)}
	}
	delete(m.sessions, id)
	m.mu.Unlock()

	// Drain: after <-s.done every worker write is ordered before our
	// reads, and any handler racing on a stale *session pointer gets a
	// clean 503 from do.
	s.halt()
	<-s.done
	metrics.QueueDepth.Add(-s.depth.Swap(0))
	metrics.SessionsActive.Add(-1)

	exp, err := m.buildExport(s)
	if err != nil {
		// The session is already out of the table and its worker is gone;
		// settle the disk copy and replay it back into serving rather than
		// leaking it. If the revive also fails the session stays absent
		// from serving but intact on disk for the next boot.
		if s.per != nil {
			s.per.settle(s)
		}
		m.reviveFromDisk(id)
		return nil, err
	}
	if s.per != nil {
		// Settle the disk copy (final snapshot + clean close) but keep the
		// directory as the crash-safety net described above.
		s.per.settle(s)
	}
	metrics.SessionsExported.Add(1)
	return exp, nil
}

// snapshotCapable reports whether the session's engine can export its
// state directly. Worker-owned read (s.eng).
func snapshotCapable(s *session) bool {
	_, ok := s.eng.(online.Snapshotter)
	return ok
}

// buildExport packages a drained session's state. Preferred path: a
// fresh snapshot straight from the engine, with an empty tail. Engines
// without snapshot support fall back to shipping the full WAL stream,
// which only exists when a store is configured.
func (m *Manager) buildExport(s *session) (*ExportedSession, error) {
	if s.broken != nil {
		return nil, &apiError{status: 409, msg: fmt.Sprintf(
			"session %s is broken (%v); a broken session cannot be exported", s.id, s.broken)}
	}
	snap, err := s.buildSnapshot()
	if err == nil {
		return &ExportedSession{
			ID:       s.id,
			Create:   store.CreateCommand{Alg: s.spec.Name, T: s.t, G: s.g},
			Snapshot: snap,
		}, nil
	}
	if err != errNoSnapshot {
		return nil, &apiError{status: 500, msg: fmt.Sprintf("snapshotting session %s for export: %v", s.id, err)}
	}
	if s.per == nil {
		return nil, &apiError{status: 409, msg: fmt.Sprintf(
			"session %s uses engine %s, which does not snapshot, and the node runs without a store: no durable history exists to ship", s.id, s.spec.Name)}
	}
	// Full-stream path: the WAL holds every command since birth (a
	// non-snapshotting engine's log is never truncated). The log is still
	// open for append here, but the worker has drained, so the on-disk
	// bytes are complete; ExportSession is a pure read.
	rs, err := m.cfg.Store.ExportSession(s.id)
	if err != nil {
		return nil, &apiError{status: 500, msg: fmt.Sprintf("reading session %s wal for export: %v", s.id, err)}
	}
	return &ExportedSession{
		ID:       s.id,
		Create:   rs.Create,
		Snapshot: rs.Snap,
		Commands: exportedCommands(rs.Commands),
	}, nil
}

// reviveFromDisk re-imports a session whose export failed after it was
// already pulled from the table. Best-effort: on any error the session
// stays out of serving, with its directory intact for the next boot.
// Requires the session's previous log handle to be settled (closed)
// first, since RecoverOne reopens the WAL for append.
func (m *Manager) reviveFromDisk(id string) {
	if m.cfg.Store == nil {
		return
	}
	rs, err := m.cfg.Store.RecoverOne(id)
	if err != nil {
		m.cfg.Logger.Warn("rescanning session after failed export", "session", id, "err", err)
		return
	}
	s, err := m.rebuild(rs, time.Now())
	if err != nil {
		m.cfg.Logger.Warn("reviving session after failed export", "session", id, "err", err)
		if cErr := rs.Log.Close(); cErr != nil {
			m.cfg.Logger.Warn("closing wal of unrevivable session", "session", id, "err", cErr)
		}
		return
	}
	m.mu.Lock()
	if _, dup := m.sessions[id]; dup || m.closed {
		m.mu.Unlock()
		m.retire(s, diskSettle)
		return
	}
	m.sessions[id] = s
	m.mu.Unlock()
	metrics.SessionsActive.Add(1)
}

// Import materializes shipped session state as a live session on this
// node. The state is replayed (and, with a store, persisted) before the
// session enters the table, so no request can observe it half-built; a
// duplicate ID is a 409 — the gateway guarantees a session lives on one
// node at a time, and a collision means that invariant broke upstream.
func (m *Manager) Import(exp *ExportedSession) (SessionInfo, error) {
	if err := validateSessionID(exp.ID); err != nil {
		return SessionInfo{}, err
	}
	spec, ok := online.LookupEngine(exp.Create.Alg)
	if !ok {
		return SessionInfo{}, &apiError{status: 400, msg: fmt.Sprintf(
			"exported session names unknown engine %q (have %v)", exp.Create.Alg, online.EngineNames())}
	}
	if _, err := online.NewEngine(exp.Create.Alg, exp.Create.T, exp.Create.G); err != nil {
		return SessionInfo{}, &apiError{status: 400, msg: err.Error()}
	}
	cmds, err := storeCommands(exp.Commands)
	if err != nil {
		return SessionInfo{}, err
	}
	rs := &store.RecoveredSession{ID: exp.ID, Create: exp.Create, Snap: exp.Snapshot, Commands: cmds}

	// Replay into a workerless session first; only a state that replays
	// cleanly end to end is worth persisting or serving.
	s, err := m.restoreSession(rs, time.Now())
	if err != nil {
		return SessionInfo{}, &apiError{status: 400, msg: fmt.Sprintf("replaying imported session %s: %v", exp.ID, err)}
	}
	if s.broken != nil {
		m.discardRestored(s)
		return SessionInfo{}, &apiError{status: 409, msg: fmt.Sprintf(
			"imported session %s replays into a broken state: %v", exp.ID, s.broken)}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.discardRestored(s)
		return SessionInfo{}, &apiError{status: 503, msg: "server is shutting down"}
	}
	if _, dup := m.sessions[exp.ID]; dup {
		m.mu.Unlock()
		m.discardRestored(s)
		return SessionInfo{}, &apiError{status: 409, msg: fmt.Sprintf(
			"session %q already lives on this node", exp.ID)}
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.discardRestored(s)
		return SessionInfo{}, &apiError{status: 429, retryAfter: true, msg: fmt.Sprintf(
			"session limit reached (%d live); cannot accept a migrated session", len(m.sessions))}
	}
	if m.cfg.Store != nil {
		// Persist while holding m.mu, matching Create's ordering: the
		// directory exists before the session serves, and no concurrent
		// Create/Import can race on the same ID.
		log, err := m.cfg.Store.ImportSession(exp.ID, exp.Create, exp.Snapshot, cmds)
		if err != nil {
			m.mu.Unlock()
			m.discardRestored(s)
			return SessionInfo{}, &apiError{status: 500, msg: fmt.Sprintf("persisting imported session: %v", err)}
		}
		// The on-disk state already reflects every shipped command, so the
		// replay tail counts toward the snapshot cadence exactly as in
		// boot recovery.
		s.per = newPersister(log, m.cfg.SnapshotEvery, len(cmds), m.cfg.Logger, exp.ID)
	}
	bumpNextID(&m.nextID, exp.ID)
	m.sessions[exp.ID] = s
	m.mu.Unlock()

	go s.work()
	metrics.SessionsImported.Add(1)
	metrics.SessionsActive.Add(1)
	return SessionInfo{ID: exp.ID, Alg: spec.Name, T: exp.Create.T, G: exp.Create.G}, nil
}

// discardRestored releases a replayed-but-never-served session's
// contribution to the queue-depth gauge (loadSnapshot and admit added
// its buffered arrivals during replay). The worker never started, so
// there is nothing to drain.
func (m *Manager) discardRestored(s *session) {
	metrics.QueueDepth.Add(-s.depth.Swap(0))
}

// List returns every live session, sorted by ID. Sessions that fail to
// report (broken, or shut down between the table read and the worker
// round-trip) are skipped rather than failing the listing.
func (m *Manager) List() SessionListResponse {
	m.mu.Lock()
	ss := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	resp := SessionListResponse{Sessions: make([]SessionInfo, 0, len(ss))}
	for _, s := range ss {
		info, err := s.Info()
		if err != nil {
			continue
		}
		resp.Sessions = append(resp.Sessions, info)
	}
	sortSessionInfos(resp.Sessions)
	return resp
}

func sortSessionInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// exportedCommands converts a recovered WAL tail to the wire form.
func exportedCommands(cmds []store.Command) []ExportedCommand {
	out := make([]ExportedCommand, 0, len(cmds))
	for _, cmd := range cmds {
		switch cmd.Type {
		case store.RecordArrivals:
			out = append(out, ExportedCommand{Kind: "arrivals", Jobs: cmd.Arrivals.Jobs})
		case store.RecordSteps:
			out = append(out, ExportedCommand{Kind: "steps", K: cmd.Steps.K})
		}
	}
	return out
}

// storeCommands converts wire commands back to store form, validating
// each — the payload crossed a network boundary and deserves the same
// suspicion as WAL bytes.
func storeCommands(cmds []ExportedCommand) ([]store.Command, error) {
	out := make([]store.Command, len(cmds))
	for i, c := range cmds {
		switch c.Kind {
		case "arrivals":
			if len(c.Jobs) == 0 {
				return nil, &apiError{status: 400, msg: fmt.Sprintf("exported command %d: empty arrivals batch", i)}
			}
			jobs := append([]store.JobRec(nil), c.Jobs...)
			out[i] = store.Command{Type: store.RecordArrivals, Arrivals: &store.ArrivalsCommand{Jobs: jobs}}
		case "steps":
			if c.K < 1 {
				return nil, &apiError{status: 400, msg: fmt.Sprintf("exported command %d: steps k=%d, want >= 1", i, c.K)}
			}
			out[i] = store.Command{Type: store.RecordSteps, Steps: &store.StepsCommand{K: c.K}}
		default:
			return nil, &apiError{status: 400, msg: fmt.Sprintf("exported command %d has kind %q, want arrivals or steps", i, c.Kind)}
		}
	}
	return out, nil
}

// validateSessionID enforces the ID charset shared by client-pinned
// creates and imports. Stricter than store.dir's traversal check on
// purpose: IDs appear in URLs, log lines, and directory names, and a
// conservative charset keeps all three contexts quoting-free.
func validateSessionID(id string) error {
	if id == "" {
		return &apiError{status: 400, msg: "session id is empty"}
	}
	if len(id) > 64 {
		return &apiError{status: 400, msg: fmt.Sprintf("session id is %d bytes, max 64", len(id))}
	}
	if id == "." || id == ".." {
		return &apiError{status: 400, msg: fmt.Sprintf("session id %q is reserved", id)}
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return &apiError{status: 400, msg: fmt.Sprintf(
				"session id %q contains %q; letters, digits, '.', '_', and '-' only", id, r)}
		}
	}
	return nil
}

// bumpNextID advances the server-numbered counter past an externally
// chosen ID that happens to match the s-%d pattern, so a later
// server-numbered Create cannot collide with it.
func bumpNextID(next *int64, id string) {
	var n int64
	if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil && n > *next {
		*next = n
	}
}
