package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"calibsched/internal/core"
)

// WriteInstance serializes an instance in the plain-text format understood
// by ReadInstance and the cmd/ tools:
//
//	# comment lines allowed anywhere
//	P T
//	n
//	r_0 w_0
//	...
//	r_{n-1} w_{n-1}
func WriteInstance(w io.Writer, in *core.Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n%d\n", in.P, in.T, in.N())
	for _, j := range in.Jobs {
		fmt.Fprintf(bw, "%d %d\n", j.Release, j.Weight)
	}
	return bw.Flush()
}

// ReadInstance parses the WriteInstance format. Blank lines and lines
// beginning with '#' are skipped.
func ReadInstance(r io.Reader) (*core.Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	var p int
	var t int64
	if _, err := fmt.Sscanf(header, "%d %d", &p, &t); err != nil {
		return nil, fmt.Errorf("workload: bad header %q: %w", header, err)
	}
	countLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("workload: reading job count: %w", err)
	}
	var n int
	if _, err := fmt.Sscanf(countLine, "%d", &n); err != nil {
		return nil, fmt.Errorf("workload: bad job count %q: %w", countLine, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative job count %d", n)
	}
	// Grow with the input rather than trusting the declared count: a
	// malicious or corrupted header must not drive a giant allocation
	// (found by FuzzReadInstance).
	var releases, weights []int64
	for i := 0; i < n; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("workload: reading job %d: %w", i, err)
		}
		var r, w int64
		if _, err := fmt.Sscanf(line, "%d %d", &r, &w); err != nil {
			return nil, fmt.Errorf("workload: bad job line %q: %w", line, err)
		}
		releases = append(releases, r)
		weights = append(weights, w)
	}
	return core.NewInstance(p, t, releases, weights)
}
