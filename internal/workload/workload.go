// Package workload generates the synthetic job instances used by the
// experiment harness: arrival processes (Poisson, bursty, uniform, batch,
// periodic) crossed with weight laws (unit, uniform, Zipf-like heavy tail,
// bimodal), plus the adversarial instances from Lemma 3.1 of the paper.
//
// All generators are deterministic given a seed, so every experiment table
// is exactly reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"calibsched/internal/core"
)

// NewRNG returns the package's deterministic PRNG for a seed. All
// generators accept an *rand.Rand so callers can share or split streams.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// PoissonReleases samples n arrival times from a Poisson process with rate
// lambda (expected arrivals per time step), rounded onto the integer grid.
// Release times are non-decreasing and start at the first arrival.
func PoissonReleases(n int, lambda float64, rng *rand.Rand) []int64 {
	if lambda <= 0 {
		panic("workload: PoissonReleases needs lambda > 0")
	}
	releases := make([]int64, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / lambda
		releases[i] = int64(t)
	}
	return releases
}

// BurstyReleases emits n jobs in bursts: burstSize jobs share each burst
// time, bursts are gap steps apart, and each job is jittered by up to
// jitter steps. With burstSize > 1 the result exercises the P>1 setting
// (or canonicalization for P=1).
func BurstyReleases(n, burstSize int, gap, jitter int64, rng *rand.Rand) []int64 {
	if burstSize < 1 {
		panic("workload: BurstyReleases needs burstSize >= 1")
	}
	if gap < 1 {
		panic("workload: BurstyReleases needs gap >= 1")
	}
	releases := make([]int64, n)
	for i := 0; i < n; i++ {
		burst := int64(i / burstSize)
		r := burst * gap
		if jitter > 0 {
			r += rng.Int64N(jitter + 1)
		}
		releases[i] = r
	}
	return releases
}

// UniformReleases samples n release times uniformly from [0, horizon).
func UniformReleases(n int, horizon int64, rng *rand.Rand) []int64 {
	if horizon < 1 {
		panic("workload: UniformReleases needs horizon >= 1")
	}
	releases := make([]int64, n)
	for i := range releases {
		releases[i] = rng.Int64N(horizon)
	}
	return releases
}

// PeriodicReleases emits one job every period steps starting at 0.
func PeriodicReleases(n int, period int64) []int64 {
	if period < 1 {
		panic("workload: PeriodicReleases needs period >= 1")
	}
	releases := make([]int64, n)
	for i := range releases {
		releases[i] = int64(i) * period
	}
	return releases
}

// BatchReleases splits n jobs into batches equal-size groups released at
// times 0, spacing, 2*spacing, ...
func BatchReleases(n, batches int, spacing int64) []int64 {
	if batches < 1 {
		panic("workload: BatchReleases needs batches >= 1")
	}
	releases := make([]int64, n)
	per := (n + batches - 1) / batches
	for i := range releases {
		releases[i] = int64(i/per) * spacing
	}
	return releases
}

// UnitWeights returns n unit weights.
func UnitWeights(n int) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// UniformWeights samples n integer weights uniformly from [1, wmax].
func UniformWeights(n int, wmax int64, rng *rand.Rand) []int64 {
	if wmax < 1 {
		panic("workload: UniformWeights needs wmax >= 1")
	}
	w := make([]int64, n)
	for i := range w {
		w[i] = 1 + rng.Int64N(wmax)
	}
	return w
}

// ZipfWeights samples n weights from a truncated Zipf law on {1..wmax} with
// exponent s > 0: P(w = k) proportional to k^-s. Heavier tails (small s)
// produce the occasional very heavy job that stresses Algorithm 2's
// weight-based trigger.
func ZipfWeights(n int, s float64, wmax int64, rng *rand.Rand) []int64 {
	if wmax < 1 || s <= 0 {
		panic("workload: ZipfWeights needs wmax >= 1 and s > 0")
	}
	// Inverse-CDF sampling over the (small) support.
	cdf := make([]float64, wmax)
	sum := 0.0
	for k := int64(1); k <= wmax; k++ {
		sum += math.Pow(float64(k), -s)
		cdf[k-1] = sum
	}
	w := make([]int64, n)
	for i := range w {
		u := rng.Float64() * sum
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		w[i] = int64(lo + 1)
	}
	return w
}

// BimodalWeights samples each weight as heavy with probability pHeavy, else
// light.
func BimodalWeights(n int, light, heavy int64, pHeavy float64, rng *rand.Rand) []int64 {
	if light < 1 || heavy < 1 {
		panic("workload: BimodalWeights needs positive weights")
	}
	w := make([]int64, n)
	for i := range w {
		if rng.Float64() < pHeavy {
			w[i] = heavy
		} else {
			w[i] = light
		}
	}
	return w
}

// ArrivalKind names an arrival process for Spec.
type ArrivalKind string

// Arrival processes understood by Spec.
const (
	ArrivalPoisson  ArrivalKind = "poisson"
	ArrivalBursty   ArrivalKind = "bursty"
	ArrivalUniform  ArrivalKind = "uniform"
	ArrivalPeriodic ArrivalKind = "periodic"
	ArrivalBatch    ArrivalKind = "batch"
)

// WeightKind names a weight law for Spec.
type WeightKind string

// Weight laws understood by Spec.
const (
	WeightUnit    WeightKind = "unit"
	WeightUniform WeightKind = "uniform"
	WeightZipf    WeightKind = "zipf"
	WeightBimodal WeightKind = "bimodal"
)

// Spec is a declarative workload description; Build turns it into an
// instance. Fields not used by the chosen kinds are ignored.
type Spec struct {
	Name string
	N    int
	P    int
	T    int64
	Seed uint64

	Arrival ArrivalKind
	Lambda  float64 // poisson: arrivals per step
	Burst   int     // bursty: jobs per burst
	Gap     int64   // bursty: steps between bursts
	Jitter  int64   // bursty: per-job jitter
	Horizon int64   // uniform: release range
	Period  int64   // periodic: steps between releases
	Batches int     // batch: number of batches
	Spacing int64   // batch: steps between batches

	Weights WeightKind
	WMax    int64   // uniform/zipf: max weight
	ZipfS   float64 // zipf: exponent
	Light   int64   // bimodal
	Heavy   int64   // bimodal
	PHeavy  float64 // bimodal
}

// Build generates the instance described by the spec, canonicalized to the
// paper's normal form (at most P jobs per release time).
func (s Spec) Build() (*core.Instance, error) {
	if s.N < 0 {
		return nil, fmt.Errorf("workload: negative N %d", s.N)
	}
	rng := NewRNG(s.Seed)
	var releases []int64
	switch s.Arrival {
	case ArrivalPoisson:
		releases = PoissonReleases(s.N, s.Lambda, rng)
	case ArrivalBursty:
		releases = BurstyReleases(s.N, s.Burst, s.Gap, s.Jitter, rng)
	case ArrivalUniform:
		releases = UniformReleases(s.N, s.Horizon, rng)
	case ArrivalPeriodic:
		releases = PeriodicReleases(s.N, s.Period)
	case ArrivalBatch:
		releases = BatchReleases(s.N, s.Batches, s.Spacing)
	default:
		return nil, fmt.Errorf("workload: unknown arrival kind %q", s.Arrival)
	}
	var weights []int64
	switch s.Weights {
	case WeightUnit, "":
		weights = UnitWeights(s.N)
	case WeightUniform:
		weights = UniformWeights(s.N, s.WMax, rng)
	case WeightZipf:
		weights = ZipfWeights(s.N, s.ZipfS, s.WMax, rng)
	case WeightBimodal:
		weights = BimodalWeights(s.N, s.Light, s.Heavy, s.PHeavy, rng)
	default:
		return nil, fmt.Errorf("workload: unknown weight kind %q", s.Weights)
	}
	in, err := core.NewInstance(s.P, s.T, releases, weights)
	if err != nil {
		return nil, err
	}
	return in.Canonicalize(), nil
}

// MustBuild is Build that panics on error, for tests and fixed specs.
func (s Spec) MustBuild() *core.Instance {
	in, err := s.Build()
	if err != nil {
		panic(err)
	}
	return in
}

// AdversaryCalibrateEarly is case (1) of Lemma 3.1: a job at time 0 and —
// if the online algorithm calibrated immediately — one more at time T.
// An optimal offline schedule calibrates once at time 1 for cost G + 3,
// while the eager algorithm pays 2G + 2.
func AdversaryCalibrateEarly(t int64) *core.Instance {
	return core.MustInstance(1, t, []int64{0, t}, []int64{1, 1})
}

// AdversaryWait is case (2) of Lemma 3.1: a job at time 0 and one more at
// each step 1..T-1. An algorithm that hesitates at time 0 pays at least
// 2T + G while OPT calibrates at 0 and pays T + G.
func AdversaryWait(t int64) *core.Instance {
	releases := make([]int64, t)
	for i := range releases {
		releases[i] = int64(i)
	}
	return core.MustInstance(1, t, releases, UnitWeights(int(t)))
}
