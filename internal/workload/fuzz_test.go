package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance hardens the instance parser: arbitrary input must never
// panic, and every successfully parsed instance must round-trip through
// WriteInstance to an equivalent instance.
func FuzzReadInstance(f *testing.F) {
	f.Add("1 5\n2\n0 1\n3 2\n")
	f.Add("# comment\n2 3\n1\n4 7\n")
	f.Add("")
	f.Add("1 5\n-1\n")
	f.Add("0 0\n0\n")
	f.Add("1 5\n3\n0 1\n")
	f.Add("1 1\n1\n9223372036854775807 1\n")
	// Truncations of a valid instance at every structural boundary.
	f.Add("1 5")
	f.Add("1 5\n")
	f.Add("1 5\n2")
	f.Add("1 5\n2\n")
	f.Add("1 5\n2\n0")
	f.Add("1 5\n2\n0 1\n3")
	// Hostile numerics and whitespace.
	f.Add("1 5\n1\n0 0\n")
	f.Add("1 5\n1\n-4 1\n")
	f.Add("9999999999999999999 5\n0\n")
	f.Add("1 5\n1\n0 99999999999999999999\n")
	f.Add("1\t5\n1\n0 1\n")
	f.Add("1 5\r\n1\r\n0 1\r\n")
	f.Add("1 5\n1\n0 1 7\n")
	f.Add("1 5\n1\n\n\n0 1\n")
	f.Add("# only comments\n# and more\n")
	f.Add("1 5\n2\n0 1\n0 1\nextra trailing line\n")
	f.Fuzz(func(t *testing.T, input string) {
		in, err := ReadInstance(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("parsed instance failed to serialize: %v", err)
		}
		back, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.N() != in.N() || back.P != in.P || back.T != in.T {
			t.Fatalf("round trip changed shape: %+v vs %+v", back, in)
		}
		for i := range in.Jobs {
			if back.Jobs[i] != in.Jobs[i] {
				t.Fatalf("round trip changed job %d", i)
			}
		}
	})
}
