package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"calibsched/internal/core"
)

func TestPoissonReleasesMonotoneAndRateIsh(t *testing.T) {
	rng := NewRNG(42)
	rel := PoissonReleases(10000, 0.5, rng)
	for i := 1; i < len(rel); i++ {
		if rel[i] < rel[i-1] {
			t.Fatalf("releases not monotone at %d: %d < %d", i, rel[i], rel[i-1])
		}
	}
	// Mean inter-arrival should be near 1/lambda = 2.
	span := float64(rel[len(rel)-1] - rel[0])
	mean := span / float64(len(rel)-1)
	if mean < 1.8 || mean > 2.2 {
		t.Errorf("mean inter-arrival %.3f, want ~2.0", mean)
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	a := PoissonReleases(100, 0.3, NewRNG(7))
	b := PoissonReleases(100, 0.3, NewRNG(7))
	c := PoissonReleases(100, 0.3, NewRNG(8))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestBurstyReleases(t *testing.T) {
	rel := BurstyReleases(9, 3, 100, 0, nil)
	want := []int64{0, 0, 0, 100, 100, 100, 200, 200, 200}
	for i := range rel {
		if rel[i] != want[i] {
			t.Fatalf("releases = %v, want %v", rel, want)
		}
	}
	withJitter := BurstyReleases(9, 3, 100, 5, NewRNG(1))
	for i, r := range withJitter {
		base := int64(i/3) * 100
		if r < base || r > base+5 {
			t.Errorf("job %d released at %d, want within [%d,%d]", i, r, base, base+5)
		}
	}
}

func TestPeriodicAndBatchReleases(t *testing.T) {
	if got := PeriodicReleases(4, 7); got[3] != 21 {
		t.Errorf("PeriodicReleases = %v", got)
	}
	got := BatchReleases(10, 2, 50)
	for i := 0; i < 5; i++ {
		if got[i] != 0 {
			t.Errorf("batch 0 job %d at %d", i, got[i])
		}
	}
	for i := 5; i < 10; i++ {
		if got[i] != 50 {
			t.Errorf("batch 1 job %d at %d", i, got[i])
		}
	}
}

func TestUniformReleasesInRange(t *testing.T) {
	rel := UniformReleases(1000, 37, NewRNG(5))
	for _, r := range rel {
		if r < 0 || r >= 37 {
			t.Fatalf("release %d out of [0,37)", r)
		}
	}
}

func TestWeightLaws(t *testing.T) {
	if w := UnitWeights(3); w[0] != 1 || w[1] != 1 || w[2] != 1 {
		t.Errorf("UnitWeights = %v", w)
	}
	rng := NewRNG(9)
	for _, w := range UniformWeights(1000, 10, rng) {
		if w < 1 || w > 10 {
			t.Fatalf("uniform weight %d out of [1,10]", w)
		}
	}
	for _, w := range BimodalWeights(1000, 1, 100, 0.1, rng) {
		if w != 1 && w != 100 {
			t.Fatalf("bimodal weight %d", w)
		}
	}
}

func TestZipfWeightsShape(t *testing.T) {
	rng := NewRNG(13)
	w := ZipfWeights(20000, 1.5, 50, rng)
	counts := map[int64]int{}
	for _, v := range w {
		if v < 1 || v > 50 {
			t.Fatalf("zipf weight %d out of range", v)
		}
		counts[v]++
	}
	// Weight 1 must dominate weight 10 by roughly 10^1.5 ~ 31.6x.
	ratio := float64(counts[1]) / math.Max(float64(counts[10]), 1)
	if ratio < 10 || ratio > 100 {
		t.Errorf("count(1)/count(10) = %.1f, want within [10,100] for s=1.5", ratio)
	}
}

func TestSpecBuildCanonical(t *testing.T) {
	spec := Spec{
		N: 50, P: 1, T: 5, Seed: 3,
		Arrival: ArrivalBursty, Burst: 5, Gap: 10,
		Weights: WeightUniform, WMax: 4,
	}
	in := spec.MustBuild()
	if in.N() != 50 || in.P != 1 || in.T != 5 {
		t.Fatalf("instance shape wrong: n=%d P=%d T=%d", in.N(), in.P, in.T)
	}
	seen := map[int64]bool{}
	for _, j := range in.Jobs {
		if seen[j.Release] {
			t.Fatalf("canonicalized P=1 instance has duplicate release %d", j.Release)
		}
		seen[j.Release] = true
	}
}

func TestSpecBuildErrors(t *testing.T) {
	if _, err := (Spec{N: 1, P: 1, T: 1, Arrival: "nope"}).Build(); err == nil {
		t.Error("unknown arrival accepted")
	}
	if _, err := (Spec{N: 1, P: 1, T: 1, Arrival: ArrivalPeriodic, Period: 1, Weights: "nope"}).Build(); err == nil {
		t.Error("unknown weights accepted")
	}
	if _, err := (Spec{N: -1, P: 1, T: 1, Arrival: ArrivalPeriodic, Period: 1}).Build(); err == nil {
		t.Error("negative N accepted")
	}
}

func TestAdversaryInstances(t *testing.T) {
	e := AdversaryCalibrateEarly(10)
	if e.N() != 2 || e.Jobs[0].Release != 0 || e.Jobs[1].Release != 10 {
		t.Errorf("AdversaryCalibrateEarly wrong: %+v", e.Jobs)
	}
	w := AdversaryWait(5)
	if w.N() != 5 {
		t.Fatalf("AdversaryWait n = %d", w.N())
	}
	for i, j := range w.Jobs {
		if j.Release != int64(i) || j.Weight != 1 {
			t.Errorf("AdversaryWait job %d = %+v", i, j)
		}
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	in := core.MustInstance(2, 7, []int64{0, 3, 3, 9}, []int64{4, 1, 2, 8})
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != in.P || got.T != in.T || got.N() != in.N() {
		t.Fatalf("round trip shape: %+v", got)
	}
	for i := range in.Jobs {
		if got.Jobs[i] != in.Jobs[i] {
			t.Errorf("job %d: %+v != %+v", i, got.Jobs[i], in.Jobs[i])
		}
	}
}

func TestReadInstanceCommentsAndErrors(t *testing.T) {
	good := "# instance\n1 5\n\n2\n0 1\n# job two\n3 2\n"
	in, err := ReadInstance(strings.NewReader(good))
	if err != nil {
		t.Fatalf("commented instance rejected: %v", err)
	}
	if in.N() != 2 {
		t.Fatalf("n = %d", in.N())
	}
	for name, text := range map[string]string{
		"empty":        "",
		"no count":     "1 5\n",
		"truncated":    "1 5\n3\n0 1\n",
		"bad header":   "x y\n1\n0 1\n",
		"bad job":      "1 5\n1\nfoo bar\n",
		"negative n":   "1 5\n-2\n",
		"invalid inst": "0 5\n1\n0 1\n",
	} {
		if _, err := ReadInstance(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}
