package workload

import (
	"bytes"
	"testing"
)

// TestFamilyRegistryShape pins the registry's stable names and the
// presence of the three adversarial stress families.
func TestFamilyRegistryShape(t *testing.T) {
	fams := Families()
	seen := map[string]Family{}
	for _, f := range fams {
		if f.Name == "" || f.Description == "" || f.Build == nil {
			t.Errorf("family %+v incomplete", f)
		}
		if _, dup := seen[f.Name]; dup {
			t.Errorf("duplicate family %q", f.Name)
		}
		seen[f.Name] = f
	}
	for _, name := range []string{"release-burst", "weight-spike", "calibration-starvation"} {
		f, ok := seen[name]
		if !ok {
			t.Fatalf("registry missing adversarial family %q", name)
		}
		if !f.Adversarial {
			t.Errorf("%s not marked adversarial", name)
		}
	}
	if _, ok := FamilyByName("no-such-family"); ok {
		t.Error("FamilyByName accepted an unknown name")
	}
	if got, want := len(FamilyNames()), len(fams); got != want {
		t.Errorf("FamilyNames returned %d names, want %d", got, want)
	}
}

// TestFamilyDeterminism: same seed, byte-identical instance file; a
// different seed must change the bytes (the generators actually consume
// their randomness).
func TestFamilyDeterminism(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			render := func(seed uint64) []byte {
				in, err := f.Build(24, 1, 6, seed)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := WriteInstance(&buf, in); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			a, b := render(7), render(7)
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different bytes:\n%s\nvs\n%s", a, b)
			}
			if c := render(8); bytes.Equal(a, c) {
				t.Errorf("seeds 7 and 8 produced identical instances (generator ignores its seed?)")
			}
		})
	}
}

// TestFamilyInstancesWellFormed checks structural contracts: job count,
// canonical form (distinct releases at P=1), weight claims.
func TestFamilyInstancesWellFormed(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			in, err := f.Build(30, 1, 5, 3)
			if err != nil {
				t.Fatal(err)
			}
			if in.N() != 30 {
				t.Fatalf("built %d jobs, want 30", in.N())
			}
			seenRelease := map[int64]bool{}
			for _, j := range in.Jobs {
				if seenRelease[j.Release] {
					t.Fatalf("release %d repeated: instance not canonical at P=1", j.Release)
				}
				seenRelease[j.Release] = true
			}
			if f.Unweighted != in.Unweighted() {
				t.Errorf("family claims Unweighted=%v but instance reports %v", f.Unweighted, in.Unweighted())
			}
		})
	}
}

// TestAdversarialFamilyShapes spot-checks the structures the stress
// families promise.
func TestAdversarialFamilyShapes(t *testing.T) {
	t.Run("weight-spike has spikes", func(t *testing.T) {
		in, err := WeightSpikeInstance(40, 1, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		spikes := 0
		for _, j := range in.Jobs {
			if j.Weight >= 64 {
				spikes++
			}
		}
		if spikes == 0 {
			t.Error("no spike job with weight >= 64")
		}
	})
	t.Run("calibration-starvation has cold gaps", func(t *testing.T) {
		in, err := CalibrationStarvationInstance(20, 1, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		longGaps := 0
		for i := 1; i < in.N(); i++ {
			if in.Jobs[i].Release-in.Jobs[i-1].Release >= 3*in.T {
				longGaps++
			}
		}
		if longGaps < 5 {
			t.Errorf("only %d gaps >= 3T in 20 jobs; starvation structure missing", longGaps)
		}
	})
	t.Run("release-burst bursts align past window expiry", func(t *testing.T) {
		in, err := ReleaseBurstInstance(24, 1, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Burst anchors are T+1 apart; canonicalization spreads each
		// burst over consecutive steps, so bursts show up as runs of
		// step-1 gaps separated by larger inter-burst gaps.
		var anchors []int64
		last := int64(-10)
		for _, j := range in.Jobs {
			if j.Release-last >= 2 {
				anchors = append(anchors, j.Release)
			}
			last = j.Release
		}
		if len(anchors) < 3 {
			t.Errorf("expected >= 3 burst anchors separated by gaps >= 2, got %v", anchors)
		}
		for i := 1; i < len(anchors); i++ {
			// Anchor stride is T+1 with +-1 per-job jitter.
			if d := anchors[i] - anchors[i-1]; d < in.T {
				t.Errorf("burst anchors %d apart, want >= T = %d", d, in.T)
			}
		}
	})
	t.Run("bad args rejected", func(t *testing.T) {
		if _, err := ReleaseBurstInstance(-1, 1, 6, 1); err == nil {
			t.Error("negative n accepted")
		}
		if _, err := WeightSpikeInstance(4, 0, 6, 1); err == nil {
			t.Error("zero machines accepted")
		}
		if _, err := CalibrationStarvationInstance(4, 1, 0, 1); err == nil {
			t.Error("zero T accepted")
		}
	})
}
