package workload

import (
	"fmt"

	"calibsched/internal/core"
)

// Family is a named instance generator over (n jobs, P machines,
// calibration length T, seed) — the unit the arena sweeps over and the
// calibgen -family flag selects. Statistical families are Spec presets;
// adversarial families are hand-shaped to stress a specific engine
// weakness (see the per-family comments). Every family is deterministic
// per seed, and every built instance is canonicalized.
type Family struct {
	Name        string
	Description string
	// Adversarial marks the hand-shaped stress families.
	Adversarial bool
	// Unweighted reports that every generated job has weight 1 (so the
	// unweighted-only engines alg1/alg3 are applicable).
	Unweighted bool
	Build      func(n, p int, t int64, seed uint64) (*core.Instance, error)
}

// Families returns the family registry in stable order: statistical
// presets first, then the adversarial stress families.
func Families() []Family {
	fromSpec := func(f func(n, p int, t int64, seed uint64) Spec) func(int, int, int64, uint64) (*core.Instance, error) {
		return func(n, p int, t int64, seed uint64) (*core.Instance, error) {
			return f(n, p, t, seed).Build()
		}
	}
	return []Family{
		{
			Name:        "poisson-unit",
			Description: "Poisson arrivals (lambda 0.4), unit weights",
			Unweighted:  true,
			Build: fromSpec(func(n, p int, t int64, seed uint64) Spec {
				return Spec{N: n, P: p, T: t, Seed: seed, Arrival: ArrivalPoisson, Lambda: 0.4, Weights: WeightUnit}
			}),
		},
		{
			Name:        "poisson-zipf",
			Description: "Poisson arrivals (lambda 0.4), Zipf heavy-tail weights (s 1.5, wmax 10)",
			Build: fromSpec(func(n, p int, t int64, seed uint64) Spec {
				return Spec{N: n, P: p, T: t, Seed: seed, Arrival: ArrivalPoisson, Lambda: 0.4, Weights: WeightZipf, ZipfS: 1.5, WMax: 10}
			}),
		},
		{
			Name:        "bursty-uniform",
			Description: "on/off bursts (4 jobs, gap 2T, jitter 1), uniform weights (wmax 8)",
			Build: fromSpec(func(n, p int, t int64, seed uint64) Spec {
				return Spec{N: n, P: p, T: t, Seed: seed, Arrival: ArrivalBursty, Burst: 4, Gap: 2 * t, Jitter: 1, Weights: WeightUniform, WMax: 8}
			}),
		},
		{
			Name:        "batch-bimodal",
			Description: "4 release batches (spacing 2T), bimodal weights (1 or 50, 10% heavy)",
			Build: fromSpec(func(n, p int, t int64, seed uint64) Spec {
				return Spec{N: n, P: p, T: t, Seed: seed, Arrival: ArrivalBatch, Batches: 4, Spacing: 2 * t, Weights: WeightBimodal, Light: 1, Heavy: 50, PHeavy: 0.1}
			}),
		},
		{
			Name:        "release-burst",
			Description: "adversarial: job bursts landing one step after each calibration window expires",
			Adversarial: true,
			Unweighted:  true,
			Build:       ReleaseBurstInstance,
		},
		{
			Name:        "weight-spike",
			Description: "adversarial: light stream with rare huge-weight spikes after cold gaps",
			Adversarial: true,
			Build:       WeightSpikeInstance,
		},
		{
			Name:        "calibration-starvation",
			Description: "adversarial: tiny job pairs separated by long cold gaps (ski-rental stress)",
			Adversarial: true,
			Unweighted:  true,
			Build:       CalibrationStarvationInstance,
		},
	}
}

// FamilyByName looks a family up by its stable name.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// FamilyNames returns every family name in registry order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

func checkFamilyArgs(n, p int, t int64) error {
	if n < 0 || p < 1 || t < 1 {
		return fmt.Errorf("workload: family needs n >= 0, p >= 1, T >= 1 (got n=%d p=%d T=%d)", n, p, t)
	}
	return nil
}

// ReleaseBurstInstance builds the release-burst adversarial family:
// bursts of jobs arrive exactly one step after the calibration window a
// burst-time calibration would have opened expires (burst i at time
// i*(T+1), with per-job jitter 0..1). An engine that calibrates eagerly
// per burst — Algorithm 1's immediate rule, the always-calibrated
// baseline — pays a fresh calibration per burst with nothing amortized
// across the gap; G sweeps find where eager recalibration stops paying.
// Unit weights keep every engine applicable.
func ReleaseBurstInstance(n, p int, t int64, seed uint64) (*core.Instance, error) {
	if err := checkFamilyArgs(n, p, t); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	burst := n / 6
	if burst < 2 {
		burst = 2
	}
	releases := make([]int64, n)
	for i := 0; i < n; i++ {
		releases[i] = int64(i/burst)*(t+1) + rng.Int64N(2)
	}
	in, err := core.NewInstance(p, t, releases, UnitWeights(n))
	if err != nil {
		return nil, err
	}
	return in.Canonicalize(), nil
}

// WeightSpikeInstance builds the weight-spike adversarial family: a
// dense stream of weight-1 jobs with a rare huge-weight spike (weight
// 64..127) released right after a cold gap of 2T idle steps. The spike
// is aimed at Algorithm 2's weight trigger: a policy that waits for
// accumulated flow before calibrating eats w_spike per step of
// hesitation, while a policy that always calibrates wastes the cold
// gaps. The stream is weighted, so alg1/alg3 are not applicable.
func WeightSpikeInstance(n, p int, t int64, seed uint64) (*core.Instance, error) {
	if err := checkFamilyArgs(n, p, t); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	spikeEvery := n / 5
	if spikeEvery < 4 {
		spikeEvery = 4
	}
	releases := make([]int64, n)
	weights := make([]int64, n)
	var clock int64
	for i := 0; i < n; i++ {
		if i > 0 && i%spikeEvery == 0 {
			// Cold gap, then the spike lands.
			clock += 2 * t
			releases[i] = clock
			weights[i] = 64 + rng.Int64N(64)
		} else {
			clock += 1 + rng.Int64N(2)
			releases[i] = clock
			weights[i] = 1
		}
	}
	in, err := core.NewInstance(p, t, releases, weights)
	if err != nil {
		return nil, err
	}
	return in.Canonicalize(), nil
}

// CalibrationStarvationInstance builds the calibration-starvation
// adversarial family: pairs of unit jobs one step apart, separated by
// cold gaps of 3T..4T idle steps. Each pair is worth at most 2 flow per
// step of waiting, so the ski-rental decision (calibrate now vs wait)
// is maximally ambiguous: periodic and always-calibrated waste almost
// every slot of every window, while a pure flow threshold waits ~G/2
// steps per pair. G sweeps trace the crossover.
func CalibrationStarvationInstance(n, p int, t int64, seed uint64) (*core.Instance, error) {
	if err := checkFamilyArgs(n, p, t); err != nil {
		return nil, err
	}
	rng := NewRNG(seed)
	releases := make([]int64, n)
	var clock int64
	for i := 0; i < n; i++ {
		if i > 0 && i%2 == 0 {
			clock += 3*t + rng.Int64N(t+1)
		} else if i > 0 {
			clock++
		}
		releases[i] = clock
	}
	in, err := core.NewInstance(p, t, releases, UnitWeights(n))
	if err != nil {
		return nil, err
	}
	return in.Canonicalize(), nil
}
