package transform

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/online"
)

func TestReleaseOrderPullsOutOfOrderJob(t *testing.T) {
	// Schedule heavy job 1 (r=1) at 1 and light job 0 (r=0) at 5 inside a
	// long interval: out of release order. The transform must pull job 0
	// to time 0, which is uncalibrated in the original single interval
	// starting at 1, so a second calibration appears.
	in := core.MustInstance(1, 6, []int64{0, 1}, []int64{1, 9})
	s := core.NewSchedule(2)
	s.Calibrate(0, 1)
	s.Assign(1, 0, 1)
	s.Assign(0, 0, 5)
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReleaseOrder(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, got); err != nil {
		t.Fatalf("transformed schedule invalid: %v", err)
	}
	if got.Start(0) != 0 || got.Start(1) != 1 {
		t.Errorf("starts = %d,%d; want 0,1", got.Start(0), got.Start(1))
	}
	if got.NumCalibrations() != 2 {
		t.Errorf("calibrations = %d, want 2 (original plus cover for slot 0)", got.NumCalibrations())
	}
}

func TestReleaseOrderKeepsOrderedScheduleIntact(t *testing.T) {
	in := core.MustInstance(1, 4, []int64{0, 2, 7}, []int64{1, 2, 3})
	s := core.NewSchedule(3)
	s.Calibrate(0, 0)
	s.Calibrate(0, 7)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 2)
	s.Assign(2, 0, 7)
	got, err := ReleaseOrder(in, s)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if got.Start(id) != s.Start(id) {
			t.Errorf("job %d moved from %d to %d", id, s.Start(id), got.Start(id))
		}
	}
	if got.NumCalibrations() != 2 {
		t.Errorf("calibrations = %d, want 2 (no additions)", got.NumCalibrations())
	}
}

func TestReleaseOrderRejects(t *testing.T) {
	multi := core.MustInstance(2, 4, []int64{0}, []int64{1})
	s := core.NewSchedule(1)
	s.Calibrate(0, 0)
	s.Assign(0, 0, 0)
	if _, err := ReleaseOrder(multi, s); err == nil {
		t.Error("accepted P=2")
	}
	in := core.MustInstance(1, 4, []int64{0}, []int64{1})
	bad := core.NewSchedule(1) // unassigned job
	if _, err := ReleaseOrder(in, bad); err == nil {
		t.Error("accepted invalid input schedule")
	}
}

func TestReleaseOrderEmpty(t *testing.T) {
	in := core.MustInstance(1, 4, nil, nil)
	got, err := ReleaseOrder(in, core.NewSchedule(0))
	if err != nil || got.NumCalibrations() != 0 {
		t.Fatalf("empty transform: %v, %d calibrations", err, got.NumCalibrations())
	}
}

// TestReleaseOrderLemma34Properties checks the three guarantees of Lemma
// 3.4 on schedules produced by real algorithms (Algorithm 2 schedules are
// genuinely out of release order, so this exercises the pull).
func TestReleaseOrderLemma34Properties(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(12)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(30))
			weights[i] = 1 + int64(rng.IntN(6))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(6)), releases, weights).Canonicalize()
		g := int64(rng.IntN(40))

		var s *core.Schedule
		if trial%2 == 0 {
			res, err := online.Alg2(in, g)
			if err != nil {
				t.Fatal(err)
			}
			s = res.Schedule
		} else {
			var err error
			s, err = baseline.Periodic(in, g, in.T+int64(rng.IntN(4)))
			if err != nil {
				t.Fatal(err)
			}
		}

		got, err := ReleaseOrder(in, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, got); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		// (1) Release order.
		for i := 1; i < n; i++ {
			if got.Start(i) <= got.Start(i-1) {
				t.Fatalf("trial %d: jobs %d,%d out of order (%d,%d)",
					trial, i-1, i, got.Start(i-1), got.Start(i))
			}
		}
		// (2) No job later; flow not increased.
		for id := 0; id < n; id++ {
			if got.Start(id) > s.Start(id) {
				t.Fatalf("trial %d: job %d delayed %d -> %d", trial, id, s.Start(id), got.Start(id))
			}
		}
		if core.Flow(in, got) > core.Flow(in, s) {
			t.Fatalf("trial %d: flow increased", trial)
		}
		// (3) Calibrations at most doubled.
		if got.NumCalibrations() > 2*s.NumCalibrations() {
			t.Fatalf("trial %d: calibrations %d > 2*%d",
				trial, got.NumCalibrations(), s.NumCalibrations())
		}
	}
}
