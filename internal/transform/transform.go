// Package transform implements Lemma 3.4 of the paper: any single-machine
// schedule can be rewritten so jobs run in release-time order, with every
// job scheduled no later than before (so flow does not increase) and at
// most twice the original number of calibrations.
//
// The construction processes jobs from latest to earliest release and pulls
// each job to min(its old slot, the slot just before the next-released
// job). Pulled jobs may land on previously uncalibrated slots; those are
// re-covered greedily, and Lemma 3.4's counting argument bounds the
// additions by the original calibration count.
package transform

import (
	"fmt"
	"sort"

	"calibsched/internal/core"
)

// ReleaseOrder rewrites a valid single-machine schedule into release-time
// order per Lemma 3.4. The returned schedule starts every job no later
// than s does and calibrates at most 2*len(s.Calendar) times. The input
// schedule is not modified.
func ReleaseOrder(in *core.Instance, s *core.Schedule) (*core.Schedule, error) {
	if in.P != 1 {
		return nil, fmt.Errorf("transform: ReleaseOrder requires P = 1, got %d", in.P)
	}
	if err := core.Validate(in, s); err != nil {
		return nil, fmt.Errorf("transform: input schedule invalid: %w", err)
	}
	n := in.N()
	out := core.NewSchedule(n)
	out.Calendar = append(core.Calendar(nil), s.Calendar...)
	if n == 0 {
		return out, nil
	}

	// Jobs are indexed in release order (ties impossible only in canonical
	// instances; for safety, order by (release, old start) so the sweep
	// below stays consistent).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := in.Jobs[order[a]], in.Jobs[order[b]]
		if ja.Release != jb.Release {
			return ja.Release < jb.Release
		}
		return s.Start(ja.ID) < s.Start(jb.ID)
	})

	starts := make([]int64, n) // new start by position in `order`
	last := len(order) - 1
	starts[last] = s.Start(order[last])
	for i := last - 1; i >= 0; i-- {
		id := order[i]
		t := s.Start(id)
		if limit := starts[i+1] - 1; limit < t {
			t = limit
		}
		if t < in.Jobs[id].Release {
			// Lemma 3.4's invariant guarantees this cannot happen:
			// starts[i+1] >= r_{i+1} >= r_i + 1.
			panic("transform: release-order pull moved a job before its release")
		}
		starts[i] = t
	}
	for i, id := range order {
		out.Assign(id, 0, starts[i])
	}

	// Cover newly occupied, previously uncalibrated slots greedily (each
	// added interval starts at the first uncovered busy slot). Greedy
	// covering is minimal, so Lemma 3.4's ceil(p/T) bound applies and the
	// total stays within twice the original count.
	coveredUntil := func(t int64) int64 {
		// Return one past the covered range at t under the original
		// calendar, or t if uncovered. Single machine: scan (calendars
		// are small; callers are tests and experiments).
		end := t
		for _, c := range s.Calendar {
			if c.Start <= t && t < c.Start+in.T {
				if c.Start+in.T > end {
					end = c.Start + in.T
				}
			}
		}
		return end
	}
	var extraEnd int64 = -1
	for i := 0; i < n; i++ {
		t := starts[i]
		if t < extraEnd {
			continue // covered by an interval we already added
		}
		if coveredUntil(t) > t {
			continue // covered by the original calendar
		}
		out.Calibrate(0, t)
		extraEnd = t + in.T
	}
	return out, nil
}
