package calibsched

import (
	"io"

	"calibsched/internal/trace"
	"calibsched/internal/workload"
)

// Workload generation: declarative specs plus the adversarial instances of
// Lemma 3.1. All generators are deterministic per seed.
type (
	// WorkloadSpec declares a synthetic workload (arrival process crossed
	// with a weight law); Build yields a canonical Instance.
	WorkloadSpec = workload.Spec
	// ArrivalKind names an arrival process.
	ArrivalKind = workload.ArrivalKind
	// WeightKind names a weight law.
	WeightKind = workload.WeightKind
)

// Arrival processes.
const (
	ArrivalPoisson  = workload.ArrivalPoisson
	ArrivalBursty   = workload.ArrivalBursty
	ArrivalUniform  = workload.ArrivalUniform
	ArrivalPeriodic = workload.ArrivalPeriodic
	ArrivalBatch    = workload.ArrivalBatch
)

// Weight laws.
const (
	WeightUnit    = workload.WeightUnit
	WeightUniform = workload.WeightUniform
	WeightZipf    = workload.WeightZipf
	WeightBimodal = workload.WeightBimodal
)

// AdversaryCalibrateEarly and AdversaryWait are the two instances the
// Lemma 3.1 adversary plays.
var (
	AdversaryCalibrateEarly = workload.AdversaryCalibrateEarly
	AdversaryWait           = workload.AdversaryWait
)

// ReadInstance parses the plain-text instance format ("P T", "n", then one
// "release weight" line per job; '#' comments allowed).
func ReadInstance(r io.Reader) (*Instance, error) { return workload.ReadInstance(r) }

// WriteInstance serializes an instance in the ReadInstance format.
func WriteInstance(w io.Writer, in *Instance) error { return workload.WriteInstance(w, in) }

// Timeline renders an ASCII Gantt view of a schedule ('#' busy, '-'
// calibrated idle, '.' uncalibrated).
func Timeline(in *Instance, s *Schedule) string { return trace.Timeline(in, s) }

// WriteScheduleCSV exports a schedule as CSV rows (jobs then calibrations).
func WriteScheduleCSV(w io.Writer, in *Instance, s *Schedule) error {
	return trace.WriteCSV(w, in, s)
}

// WriteScheduleJSON exports a schedule as indented JSON.
func WriteScheduleJSON(w io.Writer, in *Instance, s *Schedule) error {
	return trace.WriteJSON(w, in, s)
}

// Utilization summarizes a schedule's capacity usage (calibrated slots,
// busy share, flow aggregates).
type Utilization = trace.Utilization

// Utilize computes capacity usage for a valid schedule.
func Utilize(in *Instance, s *Schedule) Utilization { return trace.Utilize(in, s) }

// ScheduleComparison is one labelled schedule for WriteComparison.
type ScheduleComparison = trace.Comparison

// WriteComparison prints a side-by-side cost/utilization table for several
// schedules of one instance.
func WriteComparison(w io.Writer, in *Instance, g int64, rows []ScheduleComparison) error {
	return trace.WriteComparison(w, in, g, rows)
}
